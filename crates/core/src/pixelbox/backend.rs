//! Unified dispatch for PixelBox batch execution: the [`ComputeBackend`]
//! trait and its three implementations.
//!
//! The paper's system runs the aggregation (area-computation) workload on
//! whichever substrate is available: the GPU kernel (§3), the multi-core CPU
//! port (§4.2), or *both at once* under the hybrid execution of §5. Before
//! this module existed, every caller — the engine, the pipeline aggregator,
//! the benches — re-implemented that choice as a two-arm `match`. Now the
//! choice is made once, behind one trait:
//!
//! * [`CpuBackend`] — `PixelBox-CPU` on a work-sharing thread pool.
//! * [`GpuBackend`] — the PixelBox kernel on a simulated SIMT device.
//! * [`HybridBackend`] — splits every batch between the GPU and the CPU by a
//!   configurable fraction and merges the results in input order.
//!
//! [`AggregationDevice::backend`] maps the legacy enum to a backend, so
//! existing configuration keeps working.

use super::adaptive::{normalize_fraction, BatchObservation, SplitConfig, SplitController};
use super::cpu::compute_batch_cpu;
use super::gpu::GpuPixelBox;
use super::{AggregationDevice, PairAreas, PixelBoxConfig, PolygonPair};
use sccg_gpu_sim::{Device, LaunchStats};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Result of executing one batch of polygon pairs on a backend.
#[derive(Debug, Clone, Default)]
pub struct BackendBatch {
    /// Areas of intersection and union per input pair, in input order.
    pub areas: Vec<PairAreas>,
    /// Simulated kernel launch statistics, when a GPU executed (part of) the
    /// batch.
    pub launch: Option<LaunchStats>,
    /// Simulated GPU seconds (transfers + kernel), when a GPU executed (part
    /// of) the batch.
    pub simulated_seconds: Option<f64>,
}

impl BackendBatch {
    /// Simulated kernel time in seconds; `0.0` when no GPU was involved.
    pub fn kernel_seconds(&self) -> f64 {
        self.launch.map_or(0.0, |launch| launch.time_seconds)
    }

    /// Simulated total GPU seconds; `0.0` when no GPU was involved.
    pub fn total_simulated_seconds(&self) -> f64 {
        self.simulated_seconds.unwrap_or(0.0)
    }
}

/// A substrate that can compute the areas of a batch of polygon pairs.
///
/// Implementations must return one [`PairAreas`] per input pair, in input
/// order, and all implementations must agree bit-for-bit on the areas — the
/// substrate choice is a performance decision, never a correctness one
/// (asserted by the backend-agreement tests).
pub trait ComputeBackend: fmt::Debug + Send + Sync {
    /// Short human-readable backend name (e.g. for logs and bench labels).
    fn name(&self) -> &'static str;

    /// Computes the areas of intersection and union for every pair.
    fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> BackendBatch;
}

/// `PixelBox-CPU`: the multi-core CPU port (§4.2) as a backend.
#[derive(Debug, Clone)]
pub struct CpuBackend {
    workers: usize,
}

impl CpuBackend {
    /// Creates a CPU backend using `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        CpuBackend {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        CpuBackend::new(crate::parallel::default_workers())
    }
}

impl ComputeBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "pixelbox-cpu"
    }

    fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> BackendBatch {
        BackendBatch {
            areas: compute_batch_cpu(pairs, config, self.workers),
            launch: None,
            simulated_seconds: None,
        }
    }
}

/// PixelBox on the simulated SIMT GPU (§3) as a backend.
#[derive(Debug, Clone)]
pub struct GpuBackend {
    engine: GpuPixelBox,
}

impl GpuBackend {
    /// Creates a GPU backend bound to an existing simulated device.
    pub fn new(device: Arc<Device>) -> Self {
        GpuBackend {
            engine: GpuPixelBox::new(device),
        }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Arc<Device> {
        self.engine.device()
    }
}

impl ComputeBackend for GpuBackend {
    fn name(&self) -> &'static str {
        "pixelbox-gpu"
    }

    fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> BackendBatch {
        if pairs.is_empty() {
            // No kernel is launched for an empty batch, so `launch` stays
            // `None` — `launch.is_some()` means "the GPU actually ran".
            return BackendBatch::default();
        }
        // The simulated device walks the batch on the host thread, so cold
        // edge tables would all build serially on first touch; prewarm them
        // across the pool first (resident tables are skipped).
        super::prewarm_pair_edge_tables(pairs, crate::parallel::default_workers());
        let result = self.engine.compute_batch(pairs, config);
        let total = result.total_seconds();
        BackendBatch {
            areas: result.areas,
            launch: Some(result.launch),
            simulated_seconds: Some(total),
        }
    }
}

/// Hybrid CPU+GPU execution (§5): each batch is split between the GPU
/// (prefix) and the CPU (suffix, on a separate thread) and merged back in
/// input order. The split fraction comes from a [`SplitController`]: either
/// pinned at a configured value ([`super::adaptive::SplitPolicy::Static`],
/// the legacy behavior) or steered per batch toward the timing-balanced
/// split by the feedback loop of [`super::adaptive`] (the default).
#[derive(Debug, Clone)]
pub struct HybridBackend {
    gpu: GpuBackend,
    cpu: CpuBackend,
    controller: Arc<SplitController>,
}

/// Index at which a `len`-pair batch is split between the GPU (prefix) and
/// the CPU (suffix) for a given GPU fraction. The fraction is clamped to
/// `[0, 1]`, so the split is always within bounds: `0.0` sends everything to
/// the CPU, `1.0` everything to the GPU.
pub fn hybrid_split_point(len: usize, gpu_fraction: f64) -> usize {
    let fraction = normalize_fraction(gpu_fraction);
    ((len as f64 * fraction).round() as usize).min(len)
}

impl HybridBackend {
    /// Creates a hybrid backend with a *static* split: `gpu_fraction` of
    /// every batch (clamped to `[0, 1]`) runs on the simulated device, the
    /// rest on `cpu_workers` CPU threads. Use [`HybridBackend::with_split`]
    /// for the adaptive controller.
    pub fn new(device: Arc<Device>, cpu_workers: usize, gpu_fraction: f64) -> Self {
        Self::with_split(device, cpu_workers, SplitConfig::fixed(gpu_fraction))
    }

    /// Creates a hybrid backend whose per-batch GPU fraction is governed by a
    /// fresh [`SplitController`] built from `split`.
    pub fn with_split(device: Arc<Device>, cpu_workers: usize, split: SplitConfig) -> Self {
        Self::with_controller(device, cpu_workers, Arc::new(SplitController::new(split)))
    }

    /// Creates a hybrid backend sharing an existing controller (so callers
    /// can read its telemetry, or several backends can pool observations).
    pub fn with_controller(
        device: Arc<Device>,
        cpu_workers: usize,
        controller: Arc<SplitController>,
    ) -> Self {
        HybridBackend {
            gpu: GpuBackend::new(device),
            cpu: CpuBackend::new(cpu_workers),
            controller,
        }
    }

    /// The GPU fraction the *next* batch will be split at.
    pub fn gpu_fraction(&self) -> f64 {
        self.controller.next_fraction()
    }

    /// The split controller governing this backend.
    pub fn controller(&self) -> &Arc<SplitController> {
        &self.controller
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Arc<Device> {
        self.gpu.device()
    }

    /// Where a batch of `len` pairs would currently split between GPU prefix
    /// and CPU suffix.
    pub fn split_point(&self, len: usize) -> usize {
        self.observable_split_point(len, self.controller.next_fraction())
    }

    /// The split point for `fraction`, with the adaptive policy's
    /// observability guarantee applied: rounding must not hand the minority
    /// substrate zero pairs (on a small batch, `round(len · 0.95) == len`),
    /// or its rate EWMA would go stale and the controller could never react
    /// to a later speed change — the absorbing state [`super::adaptive`]'s
    /// probe band exists to prevent. Static splits keep the pure rounding so
    /// pinned extremes still send everything to one substrate.
    fn observable_split_point(&self, len: usize, fraction: f64) -> usize {
        let split = hybrid_split_point(len, fraction);
        if self.controller.config().policy == super::adaptive::SplitPolicy::Adaptive && len >= 2 {
            split.clamp(1, len - 1)
        } else {
            split
        }
    }
}

impl ComputeBackend for HybridBackend {
    fn name(&self) -> &'static str {
        "pixelbox-hybrid"
    }

    fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> BackendBatch {
        let fraction = self.controller.next_fraction();
        let split = self.observable_split_point(pairs.len(), fraction);
        let (gpu_pairs, cpu_pairs) = pairs.split_at(split);

        // The CPU share runs on a persistent pool thread while this thread
        // drives the simulated GPU — the two substrates genuinely overlap,
        // as in §5, with no per-batch OS thread spawn
        // (`WorkerPool::join`; a spawn per sub-millisecond batch used to
        // dwarf the batch itself). The share's pair-level parallelism comes
        // from the same shared pool, so overlapping does not cost
        // worker-thread spawns either. Empty shares skip their substrate
        // entirely (no kernel launch, no pool job). Each side's wall-clock
        // is measured so the controller can steer the next batch's split
        // toward simultaneous finish.
        let (gpu_batch, gpu_seconds, cpu_batch, cpu_seconds) = if cpu_pairs.is_empty() {
            let started = Instant::now();
            let gpu_batch = self.gpu.compute_batch(gpu_pairs, config);
            let gpu_seconds = started.elapsed().as_secs_f64();
            (gpu_batch, gpu_seconds, BackendBatch::default(), 0.0)
        } else {
            let ((cpu_batch, cpu_seconds), (gpu_batch, gpu_seconds)) =
                crate::parallel::WorkerPool::global().join(
                    || {
                        let started = Instant::now();
                        let batch = self.cpu.compute_batch(cpu_pairs, config);
                        (batch, started.elapsed().as_secs_f64())
                    },
                    || {
                        let started = Instant::now();
                        let batch = self.gpu.compute_batch(gpu_pairs, config);
                        (batch, started.elapsed().as_secs_f64())
                    },
                );
            (gpu_batch, gpu_seconds, cpu_batch, cpu_seconds)
        };

        if !pairs.is_empty() {
            // The GPU timing signal is the *larger* of the host wall-clock of
            // driving the device and the simulated device seconds. On a real
            // GPU the two coincide (the host waits out the kernel); here the
            // functional simulation runs at host speed regardless of the
            // modelled device, so a deliberately slowed device
            // (`DeviceConfig::slowed_down`, §5.6) must still be able to push
            // the split toward the CPU.
            let gpu_simulated = gpu_batch.total_simulated_seconds();
            self.controller.record(BatchObservation {
                gpu_pairs: gpu_pairs.len(),
                gpu_seconds: gpu_seconds.max(gpu_simulated),
                gpu_simulated_seconds: gpu_simulated,
                cpu_pairs: cpu_pairs.len(),
                cpu_seconds,
                cpu_workers: self.cpu.workers(),
                fraction_used: Some(fraction),
            });
        }

        let mut areas = gpu_batch.areas;
        areas.extend(cpu_batch.areas);
        BackendBatch {
            areas,
            launch: gpu_batch.launch,
            simulated_seconds: gpu_batch.simulated_seconds,
        }
    }
}

impl AggregationDevice {
    /// Maps the legacy device enum to a [`ComputeBackend`] — the one place
    /// where the substrate choice is made. `device` is the simulated GPU for
    /// the GPU and hybrid variants (the CPU variant ignores it),
    /// `cpu_workers` sizes the CPU pool, and `split` governs how each batch
    /// divides between the substrates under [`AggregationDevice::Hybrid`]
    /// (adaptive feedback by default, or a pinned static fraction).
    pub fn backend(
        self,
        device: Arc<Device>,
        cpu_workers: usize,
        split: SplitConfig,
    ) -> Arc<dyn ComputeBackend> {
        self.backend_with_controller(device, cpu_workers, split).0
    }

    /// Like [`AggregationDevice::backend`], additionally returning the
    /// hybrid variant's [`SplitController`] so callers can read per-batch
    /// split telemetry and observed substrate rates (`None` for the
    /// single-substrate variants).
    pub fn backend_with_controller(
        self,
        device: Arc<Device>,
        cpu_workers: usize,
        split: SplitConfig,
    ) -> (Arc<dyn ComputeBackend>, Option<Arc<SplitController>>) {
        match self {
            AggregationDevice::Gpu => (Arc::new(GpuBackend::new(device)), None),
            AggregationDevice::Cpu => (Arc::new(CpuBackend::new(cpu_workers)), None),
            AggregationDevice::Hybrid => {
                let controller = Arc::new(SplitController::new(split));
                let backend =
                    HybridBackend::with_controller(device, cpu_workers, Arc::clone(&controller));
                (Arc::new(backend), Some(controller))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::{Rect, RectilinearPolygon};
    use sccg_gpu_sim::DeviceConfig;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::gtx580()))
    }

    fn sample_pairs(n: i32) -> Vec<PolygonPair> {
        (0..n)
            .map(|i| {
                let p =
                    RectilinearPolygon::rectangle(Rect::new(2 * i, i, 2 * i + 11 + (i % 5), i + 9))
                        .unwrap();
                let q =
                    RectilinearPolygon::rectangle(Rect::new(2 * i + 3, i + 2, 2 * i + 15, i + 12))
                        .unwrap();
                PolygonPair::new(p, q)
            })
            .collect()
    }

    #[test]
    fn all_backends_agree_bit_for_bit() {
        let pairs = sample_pairs(33);
        let config = PixelBoxConfig::paper_default();
        let cpu = CpuBackend::new(2).compute_batch(&pairs, &config);
        let gpu = GpuBackend::new(device()).compute_batch(&pairs, &config);
        let hybrid = HybridBackend::new(device(), 2, 0.5).compute_batch(&pairs, &config);
        assert_eq!(cpu.areas, gpu.areas);
        assert_eq!(cpu.areas, hybrid.areas);
        assert!(cpu.launch.is_none() && cpu.simulated_seconds.is_none());
        assert!(gpu.launch.is_some() && gpu.simulated_seconds.is_some());
        assert!(hybrid.launch.is_some(), "hybrid ran a GPU share");
    }

    #[test]
    fn hybrid_actually_splits_across_both_substrates() {
        let pairs = sample_pairs(20);
        let config = PixelBoxConfig::paper_default();
        let dev = device();
        let hybrid = HybridBackend::new(Arc::clone(&dev), 1, 0.5);
        assert_eq!(hybrid.split_point(pairs.len()), 10);

        let launches_before = dev.stats().launches;
        let batch = hybrid.compute_batch(&pairs, &config);
        let launches_after = dev.stats().launches;

        // The GPU saw exactly one launch for its half...
        assert_eq!(launches_after - launches_before, 1);
        // ...whose stats cover 10 pairs' worth of work, while the full batch
        // still produced every result: the other 10 ran on the CPU.
        assert_eq!(batch.areas.len(), pairs.len());
        let gpu_only = GpuBackend::new(device()).compute_batch(&pairs[..10], &config);
        assert_eq!(
            batch.launch.unwrap().cycles,
            gpu_only.launch.unwrap().cycles
        );
    }

    #[test]
    fn hybrid_fraction_extremes_degenerate_cleanly() {
        let pairs = sample_pairs(12);
        let config = PixelBoxConfig::paper_default();
        let all_cpu = HybridBackend::new(device(), 2, 0.0).compute_batch(&pairs, &config);
        assert!(all_cpu.launch.is_none(), "fraction 0 never touches the GPU");
        let all_gpu = HybridBackend::new(device(), 2, 1.0).compute_batch(&pairs, &config);
        assert!(all_gpu.launch.is_some());
        assert_eq!(all_cpu.areas, all_gpu.areas);
    }

    #[test]
    fn split_point_is_clamped_and_bounded() {
        assert_eq!(hybrid_split_point(10, -3.0), 0);
        assert_eq!(hybrid_split_point(10, 0.0), 0);
        assert_eq!(hybrid_split_point(10, 1.0), 10);
        assert_eq!(hybrid_split_point(10, 7.5), 10);
        assert_eq!(hybrid_split_point(10, 0.5), 5);
        assert_eq!(hybrid_split_point(0, 0.5), 0);
        assert_eq!(hybrid_split_point(10, f64::NAN), 5);
    }

    #[test]
    fn aggregation_device_constructs_matching_backends() {
        let names: Vec<&str> = [
            AggregationDevice::Gpu,
            AggregationDevice::Cpu,
            AggregationDevice::Hybrid,
        ]
        .into_iter()
        .map(|d| d.backend(device(), 2, SplitConfig::default()).name())
        .collect();
        assert_eq!(
            names,
            vec!["pixelbox-gpu", "pixelbox-cpu", "pixelbox-hybrid"]
        );
    }

    #[test]
    fn only_the_hybrid_backend_has_a_controller() {
        for (device_kind, expect_controller) in [
            (AggregationDevice::Gpu, false),
            (AggregationDevice::Cpu, false),
            (AggregationDevice::Hybrid, true),
        ] {
            let (_, controller) =
                device_kind.backend_with_controller(device(), 2, SplitConfig::default());
            assert_eq!(controller.is_some(), expect_controller, "{device_kind:?}");
        }
    }

    #[test]
    fn adaptive_hybrid_agrees_across_batches_and_records_telemetry() {
        let pairs = sample_pairs(48);
        let config = PixelBoxConfig::paper_default();
        let reference = CpuBackend::new(2).compute_batch(&pairs, &config);
        let (backend, controller) = AggregationDevice::Hybrid.backend_with_controller(
            device(),
            2,
            SplitConfig::adaptive(0.5),
        );
        let controller = controller.unwrap();
        // Run several batches so the controller has observations to act on;
        // whatever fraction it picks, results must stay bit-identical.
        for _ in 0..5 {
            let batch = backend.compute_batch(&pairs, &config);
            assert_eq!(batch.areas, reference.areas);
        }
        assert_eq!(controller.batches_recorded(), 5);
        let trace = controller.trace();
        assert_eq!(trace.len(), 5);
        assert!(trace
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.next_fraction)));
        assert!(controller.observed_gpu_rate().is_some());
        assert!(controller.observed_cpu_rate_per_worker().is_some());
    }

    #[test]
    fn adaptive_small_batches_never_starve_a_substrate() {
        // At the probe-band edge (0.95), round(8 * 0.95) == 8 would hand the
        // CPU zero pairs and freeze its rate EWMA; the adaptive split point
        // must keep at least one pair on each side of any 2+-pair batch.
        let adaptive = HybridBackend::with_split(device(), 1, SplitConfig::adaptive(0.95));
        for len in 2..=12usize {
            let split = adaptive.split_point(len);
            assert!((1..len).contains(&split), "len {len} split {split}");
        }
        assert_eq!(adaptive.split_point(1), 1, "single pair goes to one side");
        // Both substrates are observed even on a tiny batch at the edge.
        let batch = adaptive.compute_batch(&sample_pairs(8), &PixelBoxConfig::paper_default());
        assert_eq!(batch.areas.len(), 8);
        assert!(adaptive.controller().observed_gpu_rate().is_some());
        assert!(adaptive
            .controller()
            .observed_cpu_rate_per_worker()
            .is_some());
        // Static splits keep pure rounding: pinned extremes stay one-sided.
        let pinned = HybridBackend::new(device(), 1, 1.0);
        assert_eq!(pinned.split_point(8), 8);
    }

    #[test]
    fn modelled_slow_device_pushes_the_adaptive_split_toward_the_cpu() {
        // The functional simulation runs at host speed, but the GPU timing
        // signal takes the simulated seconds when larger — so a device
        // slowed by §5.6's Config-III trick must drain the GPU share even
        // though the host cost of simulating it is unchanged.
        let slow_device = Arc::new(Device::new(DeviceConfig::gtx580().slowed_down(1.0e6)));
        let hybrid = HybridBackend::with_split(slow_device, 2, SplitConfig::adaptive(0.5));
        let pairs = sample_pairs(40);
        let config = PixelBoxConfig::paper_default();
        let reference = CpuBackend::new(1).compute_batch(&pairs, &config);
        for _ in 0..12 {
            let batch = hybrid.compute_batch(&pairs, &config);
            assert_eq!(batch.areas, reference.areas);
        }
        let fraction = hybrid.gpu_fraction();
        assert!(
            fraction <= 0.2,
            "slowed device must collapse the GPU share, got {fraction}"
        );
    }

    #[test]
    fn static_backend_records_but_never_moves() {
        let pairs = sample_pairs(30);
        let config = PixelBoxConfig::paper_default();
        let hybrid = HybridBackend::new(device(), 2, 0.5);
        for _ in 0..4 {
            hybrid.compute_batch(&pairs, &config);
        }
        assert_eq!(hybrid.gpu_fraction(), 0.5);
        assert_eq!(hybrid.controller().batches_recorded(), 4);
    }

    #[test]
    fn empty_batch_is_empty_on_every_backend() {
        let config = PixelBoxConfig::paper_default();
        for backend in [
            AggregationDevice::Gpu.backend(device(), 2, SplitConfig::default()),
            AggregationDevice::Cpu.backend(device(), 2, SplitConfig::default()),
            AggregationDevice::Hybrid.backend(device(), 2, SplitConfig::default()),
        ] {
            let batch = backend.compute_batch(&[], &config);
            assert!(batch.areas.is_empty(), "{}", backend.name());
            assert_eq!(batch.kernel_seconds(), 0.0, "{}", backend.name());
        }
    }
}
