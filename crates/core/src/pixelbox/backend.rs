//! Unified dispatch for PixelBox batch execution: the [`ComputeBackend`]
//! trait and its three implementations.
//!
//! The paper's system runs the aggregation (area-computation) workload on
//! whichever substrate is available: the GPU kernel (§3), the multi-core CPU
//! port (§4.2), or *both at once* under the hybrid execution of §5. Before
//! this module existed, every caller — the engine, the pipeline aggregator,
//! the benches — re-implemented that choice as a two-arm `match`. Now the
//! choice is made once, behind one trait:
//!
//! * [`CpuBackend`] — `PixelBox-CPU` on a work-sharing thread pool.
//! * [`GpuBackend`] — the PixelBox kernel on a simulated SIMT device.
//! * [`HybridBackend`] — splits every batch between the GPU and the CPU by a
//!   configurable fraction and merges the results in input order.
//!
//! [`AggregationDevice::backend`] maps the legacy enum to a backend, so
//! existing configuration keeps working.

use super::cpu::compute_batch_cpu;
use super::gpu::GpuPixelBox;
use super::{AggregationDevice, PairAreas, PixelBoxConfig, PolygonPair};
use sccg_gpu_sim::{Device, LaunchStats};
use std::fmt;
use std::sync::Arc;

/// Result of executing one batch of polygon pairs on a backend.
#[derive(Debug, Clone, Default)]
pub struct BackendBatch {
    /// Areas of intersection and union per input pair, in input order.
    pub areas: Vec<PairAreas>,
    /// Simulated kernel launch statistics, when a GPU executed (part of) the
    /// batch.
    pub launch: Option<LaunchStats>,
    /// Simulated GPU seconds (transfers + kernel), when a GPU executed (part
    /// of) the batch.
    pub simulated_seconds: Option<f64>,
}

impl BackendBatch {
    /// Simulated kernel time in seconds; `0.0` when no GPU was involved.
    pub fn kernel_seconds(&self) -> f64 {
        self.launch.map_or(0.0, |launch| launch.time_seconds)
    }

    /// Simulated total GPU seconds; `0.0` when no GPU was involved.
    pub fn total_simulated_seconds(&self) -> f64 {
        self.simulated_seconds.unwrap_or(0.0)
    }
}

/// A substrate that can compute the areas of a batch of polygon pairs.
///
/// Implementations must return one [`PairAreas`] per input pair, in input
/// order, and all implementations must agree bit-for-bit on the areas — the
/// substrate choice is a performance decision, never a correctness one
/// (asserted by the backend-agreement tests).
pub trait ComputeBackend: fmt::Debug + Send + Sync {
    /// Short human-readable backend name (e.g. for logs and bench labels).
    fn name(&self) -> &'static str;

    /// Computes the areas of intersection and union for every pair.
    fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> BackendBatch;
}

/// `PixelBox-CPU`: the multi-core CPU port (§4.2) as a backend.
#[derive(Debug, Clone)]
pub struct CpuBackend {
    workers: usize,
}

impl CpuBackend {
    /// Creates a CPU backend using `workers` threads (at least one).
    pub fn new(workers: usize) -> Self {
        CpuBackend {
            workers: workers.max(1),
        }
    }

    /// Number of worker threads used per batch.
    pub fn workers(&self) -> usize {
        self.workers
    }
}

impl Default for CpuBackend {
    fn default() -> Self {
        CpuBackend::new(crate::parallel::default_workers())
    }
}

impl ComputeBackend for CpuBackend {
    fn name(&self) -> &'static str {
        "pixelbox-cpu"
    }

    fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> BackendBatch {
        BackendBatch {
            areas: compute_batch_cpu(pairs, config, self.workers),
            launch: None,
            simulated_seconds: None,
        }
    }
}

/// PixelBox on the simulated SIMT GPU (§3) as a backend.
#[derive(Debug, Clone)]
pub struct GpuBackend {
    engine: GpuPixelBox,
}

impl GpuBackend {
    /// Creates a GPU backend bound to an existing simulated device.
    pub fn new(device: Arc<Device>) -> Self {
        GpuBackend {
            engine: GpuPixelBox::new(device),
        }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Arc<Device> {
        self.engine.device()
    }
}

impl ComputeBackend for GpuBackend {
    fn name(&self) -> &'static str {
        "pixelbox-gpu"
    }

    fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> BackendBatch {
        if pairs.is_empty() {
            // No kernel is launched for an empty batch, so `launch` stays
            // `None` — `launch.is_some()` means "the GPU actually ran".
            return BackendBatch::default();
        }
        let result = self.engine.compute_batch(pairs, config);
        let total = result.total_seconds();
        BackendBatch {
            areas: result.areas,
            launch: Some(result.launch),
            simulated_seconds: Some(total),
        }
    }
}

/// Hybrid CPU+GPU execution (§5): each batch is split by a configurable
/// fraction; the GPU computes the prefix while the CPU computes the suffix
/// on a separate thread, and the results are merged back in input order.
#[derive(Debug, Clone)]
pub struct HybridBackend {
    gpu: GpuBackend,
    cpu: CpuBackend,
    gpu_fraction: f64,
}

/// The single normalization policy for a GPU fraction: `NaN` falls back to
/// an even split, everything else is clamped to `[0, 1]`.
fn normalize_gpu_fraction(gpu_fraction: f64) -> f64 {
    if gpu_fraction.is_nan() {
        0.5
    } else {
        gpu_fraction.clamp(0.0, 1.0)
    }
}

/// Index at which a `len`-pair batch is split between the GPU (prefix) and
/// the CPU (suffix) for a given GPU fraction. The fraction is clamped to
/// `[0, 1]`, so the split is always within bounds: `0.0` sends everything to
/// the CPU, `1.0` everything to the GPU.
pub fn hybrid_split_point(len: usize, gpu_fraction: f64) -> usize {
    let fraction = normalize_gpu_fraction(gpu_fraction);
    ((len as f64 * fraction).round() as usize).min(len)
}

impl HybridBackend {
    /// Creates a hybrid backend: `gpu_fraction` of every batch (clamped to
    /// `[0, 1]`) runs on the simulated device, the rest on `cpu_workers`
    /// CPU threads.
    pub fn new(device: Arc<Device>, cpu_workers: usize, gpu_fraction: f64) -> Self {
        HybridBackend {
            gpu: GpuBackend::new(device),
            cpu: CpuBackend::new(cpu_workers),
            gpu_fraction: normalize_gpu_fraction(gpu_fraction),
        }
    }

    /// The fraction of each batch sent to the GPU.
    pub fn gpu_fraction(&self) -> f64 {
        self.gpu_fraction
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Arc<Device> {
        self.gpu.device()
    }

    /// Where a batch of `len` pairs splits between GPU prefix and CPU suffix.
    pub fn split_point(&self, len: usize) -> usize {
        hybrid_split_point(len, self.gpu_fraction)
    }
}

impl ComputeBackend for HybridBackend {
    fn name(&self) -> &'static str {
        "pixelbox-hybrid"
    }

    fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> BackendBatch {
        let split = self.split_point(pairs.len());
        let (gpu_pairs, cpu_pairs) = pairs.split_at(split);

        // The CPU share runs on its own thread while this thread drives the
        // simulated GPU — the two substrates genuinely overlap, as in §5.
        // Empty shares skip their substrate entirely (no kernel launch, no
        // thread spawn).
        let (gpu_batch, cpu_batch) = if cpu_pairs.is_empty() {
            (
                self.gpu.compute_batch(gpu_pairs, config),
                BackendBatch::default(),
            )
        } else {
            std::thread::scope(|scope| {
                let cpu_handle = scope.spawn(|| self.cpu.compute_batch(cpu_pairs, config));
                let gpu_batch = self.gpu.compute_batch(gpu_pairs, config);
                (gpu_batch, cpu_handle.join().expect("cpu share panicked"))
            })
        };

        let mut areas = gpu_batch.areas;
        areas.extend(cpu_batch.areas);
        BackendBatch {
            areas,
            launch: gpu_batch.launch,
            simulated_seconds: gpu_batch.simulated_seconds,
        }
    }
}

impl AggregationDevice {
    /// Maps the legacy device enum to a [`ComputeBackend`] — the one place
    /// where the substrate choice is made. `device` is the simulated GPU for
    /// the GPU and hybrid variants (the CPU variant ignores it),
    /// `cpu_workers` sizes the CPU pool, and `hybrid_gpu_fraction` is the
    /// GPU share of each batch under [`AggregationDevice::Hybrid`].
    pub fn backend(
        self,
        device: Arc<Device>,
        cpu_workers: usize,
        hybrid_gpu_fraction: f64,
    ) -> Arc<dyn ComputeBackend> {
        match self {
            AggregationDevice::Gpu => Arc::new(GpuBackend::new(device)),
            AggregationDevice::Cpu => Arc::new(CpuBackend::new(cpu_workers)),
            AggregationDevice::Hybrid => {
                Arc::new(HybridBackend::new(device, cpu_workers, hybrid_gpu_fraction))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::{Rect, RectilinearPolygon};
    use sccg_gpu_sim::DeviceConfig;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::gtx580()))
    }

    fn sample_pairs(n: i32) -> Vec<PolygonPair> {
        (0..n)
            .map(|i| {
                let p =
                    RectilinearPolygon::rectangle(Rect::new(2 * i, i, 2 * i + 11 + (i % 5), i + 9))
                        .unwrap();
                let q =
                    RectilinearPolygon::rectangle(Rect::new(2 * i + 3, i + 2, 2 * i + 15, i + 12))
                        .unwrap();
                PolygonPair::new(p, q)
            })
            .collect()
    }

    #[test]
    fn all_backends_agree_bit_for_bit() {
        let pairs = sample_pairs(33);
        let config = PixelBoxConfig::paper_default();
        let cpu = CpuBackend::new(2).compute_batch(&pairs, &config);
        let gpu = GpuBackend::new(device()).compute_batch(&pairs, &config);
        let hybrid = HybridBackend::new(device(), 2, 0.5).compute_batch(&pairs, &config);
        assert_eq!(cpu.areas, gpu.areas);
        assert_eq!(cpu.areas, hybrid.areas);
        assert!(cpu.launch.is_none() && cpu.simulated_seconds.is_none());
        assert!(gpu.launch.is_some() && gpu.simulated_seconds.is_some());
        assert!(hybrid.launch.is_some(), "hybrid ran a GPU share");
    }

    #[test]
    fn hybrid_actually_splits_across_both_substrates() {
        let pairs = sample_pairs(20);
        let config = PixelBoxConfig::paper_default();
        let dev = device();
        let hybrid = HybridBackend::new(Arc::clone(&dev), 1, 0.5);
        assert_eq!(hybrid.split_point(pairs.len()), 10);

        let launches_before = dev.stats().launches;
        let batch = hybrid.compute_batch(&pairs, &config);
        let launches_after = dev.stats().launches;

        // The GPU saw exactly one launch for its half...
        assert_eq!(launches_after - launches_before, 1);
        // ...whose stats cover 10 pairs' worth of work, while the full batch
        // still produced every result: the other 10 ran on the CPU.
        assert_eq!(batch.areas.len(), pairs.len());
        let gpu_only = GpuBackend::new(device()).compute_batch(&pairs[..10], &config);
        assert_eq!(
            batch.launch.unwrap().cycles,
            gpu_only.launch.unwrap().cycles
        );
    }

    #[test]
    fn hybrid_fraction_extremes_degenerate_cleanly() {
        let pairs = sample_pairs(12);
        let config = PixelBoxConfig::paper_default();
        let all_cpu = HybridBackend::new(device(), 2, 0.0).compute_batch(&pairs, &config);
        assert!(all_cpu.launch.is_none(), "fraction 0 never touches the GPU");
        let all_gpu = HybridBackend::new(device(), 2, 1.0).compute_batch(&pairs, &config);
        assert!(all_gpu.launch.is_some());
        assert_eq!(all_cpu.areas, all_gpu.areas);
    }

    #[test]
    fn split_point_is_clamped_and_bounded() {
        assert_eq!(hybrid_split_point(10, -3.0), 0);
        assert_eq!(hybrid_split_point(10, 0.0), 0);
        assert_eq!(hybrid_split_point(10, 1.0), 10);
        assert_eq!(hybrid_split_point(10, 7.5), 10);
        assert_eq!(hybrid_split_point(10, 0.5), 5);
        assert_eq!(hybrid_split_point(0, 0.5), 0);
        assert_eq!(hybrid_split_point(10, f64::NAN), 5);
    }

    #[test]
    fn aggregation_device_constructs_matching_backends() {
        let names: Vec<&str> = [
            AggregationDevice::Gpu,
            AggregationDevice::Cpu,
            AggregationDevice::Hybrid,
        ]
        .into_iter()
        .map(|d| d.backend(device(), 2, 0.5).name())
        .collect();
        assert_eq!(
            names,
            vec!["pixelbox-gpu", "pixelbox-cpu", "pixelbox-hybrid"]
        );
    }

    #[test]
    fn empty_batch_is_empty_on_every_backend() {
        let config = PixelBoxConfig::paper_default();
        for backend in [
            AggregationDevice::Gpu.backend(device(), 2, 0.5),
            AggregationDevice::Cpu.backend(device(), 2, 0.5),
            AggregationDevice::Hybrid.backend(device(), 2, 0.5),
        ] {
            let batch = backend.compute_batch(&[], &config);
            assert!(batch.areas.is_empty(), "{}", backend.name());
            assert_eq!(batch.kernel_seconds(), 0.0, "{}", backend.name());
        }
    }
}
