//! The PixelBox algorithm (paper §3) and its variants.
//!
//! PixelBox computes the areas of intersection and union of a batch of
//! rectilinear polygon pairs *without constructing the overlay geometry*. It
//! combines two ideas:
//!
//! 1. **Pixelization** (§3.1): classify every pixel of a pair's MBR against
//!    both polygons with an even–odd ray cast; the intersection area is the
//!    count of pixels inside both, the union the count inside either. Pixel
//!    tests are independent, so they map perfectly onto SIMD lanes.
//! 2. **Sampling boxes** (§3.2): recursively partition the MBR into boxes;
//!    a box that lies entirely inside or outside both polygons resolves the
//!    contribution of all of its pixels at once (Lemma 1). When a box drops
//!    below the pixelization threshold `T`, per-pixel testing finishes it.
//!
//! The union is normally derived indirectly through
//! `‖p∪q‖ = ‖p‖ + ‖q‖ − ‖p∩q‖`, avoiding the extra partitionings required to
//! resolve union contributions directly.
//!
//! Submodules:
//!
//! * [`position`] — the sampling-box position predicate of Lemma 1.
//! * [`algorithm`] — the device-independent core of PixelBox, shared by the
//!   CPU port and the GPU kernel, with an execution trace used for cost
//!   accounting. Pixelized regions are finished by an interval-scanline fast
//!   path over each polygon's cached [`sccg_geometry::EdgeTable`]
//!   (O(rows × crossing edges) instead of O(pixels × edges)); the retained
//!   per-pixel loop ([`algorithm::compute_pair_reference`]) is the oracle it
//!   is verified bit-identical against — areas *and* traces.
//! * [`cpu`] — `PixelBox-CPU`: the multi-core CPU port (§4.2).
//! * [`gpu`] — the CUDA-style kernel executed on the `sccg-gpu-sim` device,
//!   including the implementation-optimization toggles evaluated in Figure 9.
//! * [`backend`] — the [`ComputeBackend`] dispatch trait unifying the CPU,
//!   GPU and hybrid CPU+GPU substrates behind one interface.
//! * [`adaptive`] — the timing-feedback [`SplitController`] that steers the
//!   hybrid backend's per-batch CPU/GPU split (the paper's §4 migration
//!   heuristic generalized to intra-batch splits).

pub mod adaptive;
pub mod algorithm;
pub mod backend;
pub mod cpu;
pub mod gpu;
pub mod position;

pub use adaptive::{
    BatchObservation, SplitConfig, SplitController, SplitPolicy, SplitSample, SplitTrace,
    MIN_OBSERVED_SECONDS,
};
pub use backend::{BackendBatch, ComputeBackend, CpuBackend, GpuBackend, HybridBackend};
pub use sccg_clip::PairAreas;
use sccg_geometry::RectilinearPolygon;

/// Builds the scanline [`sccg_geometry::EdgeTable`] of every polygon that
/// does not already have one resident, fanning the builds out over the
/// persistent [`WorkerPool`](crate::parallel::WorkerPool).
///
/// Each polygon's table lives in a `OnceLock`, so on a cold batch the first
/// toucher of each polygon pays its whole build inline — and a host loop
/// that walks pairs sequentially (the GPU simulator's round-robin dispatch)
/// serializes *every* build on one thread. Prewarming through the pool
/// amortizes the builds across workers instead; already-resident tables
/// (checked via [`RectilinearPolygon::edge_table_if_built`]) are skipped
/// without contending on the lock.
///
/// Returns the number of polygons that were cold at entry (whose build was
/// scheduled on the pool).
pub fn build_edge_tables_batch(polygons: &[&RectilinearPolygon], max_workers: usize) -> usize {
    let cold: Vec<&RectilinearPolygon> = polygons
        .iter()
        .copied()
        .filter(|poly| poly.edge_table_if_built().is_none())
        .collect();
    if cold.is_empty() {
        return 0;
    }
    crate::parallel::WorkerPool::global().map(&cold, max_workers, 8, |poly| {
        poly.edge_table();
    });
    cold.len()
}

/// [`build_edge_tables_batch`] over the polygons of a pair batch: prewarms
/// both members of every pair before a sequential host loop first touches
/// them. Returns the number of tables built.
pub fn prewarm_pair_edge_tables(pairs: &[PolygonPair], max_workers: usize) -> usize {
    let polygons: Vec<&RectilinearPolygon> =
        pairs.iter().flat_map(|pair| [&pair.p, &pair.q]).collect();
    build_edge_tables_batch(&polygons, max_workers)
}

/// One input pair for cross-comparison: a polygon from each segmentation
/// result whose MBRs intersect (produced by the filter stage).
#[derive(Debug, Clone, PartialEq)]
pub struct PolygonPair {
    /// Polygon from the first segmentation result.
    pub p: RectilinearPolygon,
    /// Polygon from the second segmentation result.
    pub q: RectilinearPolygon,
}

impl PolygonPair {
    /// Creates a pair.
    pub fn new(p: RectilinearPolygon, q: RectilinearPolygon) -> Self {
        PolygonPair { p, q }
    }

    /// The joint MBR of the pair — the initial sampling box of Algorithm 1.
    pub fn joint_mbr(&self) -> sccg_geometry::Rect {
        self.p.mbr().union(&self.q.mbr())
    }
}

/// Algorithm variant, matching the versions compared in Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Pixelization only: every pixel of the joint MBR is tested. (`PixelOnly`)
    PixelOnly,
    /// Sampling boxes, but the areas of intersection *and* union are both
    /// resolved through box partitioning. (`PixelBox-NoSep`)
    NoSep,
    /// Full PixelBox: sampling boxes resolve the intersection only; the union
    /// is derived indirectly from the polygon areas. (`PixelBox`)
    #[default]
    Full,
}

/// Implementation-optimization toggles evaluated in Figure 9. They change
/// the *cost* of the GPU kernel, never its results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptimizationFlags {
    /// Stage polygon vertex data in shared memory when it fits (otherwise
    /// every position test re-reads vertices from global memory).
    pub shared_memory_vertices: bool,
    /// Lay the sampling-box stack out as five separate arrays so simultaneous
    /// pushes are conflict-free (structure-of-arrays), instead of one
    /// interleaved array (array-of-structures).
    pub avoid_bank_conflicts: bool,
    /// Unroll the polygon-edge loops in the position tests by a factor of 4.
    pub unroll_loops: bool,
}

impl OptimizationFlags {
    /// All optimizations enabled — the configuration called
    /// `PixelBox-NBC-UR-SM` in Figure 9 and used everywhere else.
    pub const fn all() -> Self {
        OptimizationFlags {
            shared_memory_vertices: true,
            avoid_bank_conflicts: true,
            unroll_loops: true,
        }
    }

    /// No optimizations — `PixelBox-NoOpt` in Figure 9.
    pub const fn none() -> Self {
        OptimizationFlags {
            shared_memory_vertices: false,
            avoid_bank_conflicts: false,
            unroll_loops: false,
        }
    }
}

impl Default for OptimizationFlags {
    fn default() -> Self {
        Self::all()
    }
}

/// Which device executes the aggregation (area computation) work.
///
/// This enum is the configuration-level name of a substrate; the actual
/// dispatch happens through the [`ComputeBackend`] it constructs via
/// [`AggregationDevice::backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AggregationDevice {
    /// The simulated GPU (PixelBox kernel).
    #[default]
    Gpu,
    /// The host CPU (PixelBox-CPU).
    Cpu,
    /// Both at once: each batch splits between GPU and CPU (§5 hybrid
    /// execution). The split is governed by a [`SplitController`] — adaptive
    /// timing feedback by default, or pinned at the configured seed fraction
    /// (e.g. `EngineConfig::hybrid_gpu_fraction`) under
    /// [`SplitPolicy::Static`].
    Hybrid,
}

/// Tunable parameters of PixelBox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PixelBoxConfig {
    /// Threads per block (`n` in §3.4). Also the number of sub-boxes a
    /// sampling box is partitioned into on the GPU.
    pub block_size: u32,
    /// Number of thread blocks in the grid. Pairs are distributed round-robin
    /// over blocks (Algorithm 1 line 10/43).
    pub grid_size: u32,
    /// Pixelization threshold `T`: boxes smaller than this many pixels are
    /// finished with per-pixel tests. The paper recommends `T ≈ n²/2`.
    pub threshold: u32,
    /// Algorithm variant.
    pub variant: Variant,
    /// Implementation optimizations (GPU cost model only).
    pub opts: OptimizationFlags,
    /// Partition fanout used by the CPU port (the GPU always partitions into
    /// `block_size` sub-boxes; the CPU port explores boxes depth-first with a
    /// small fanout, which is friendlier to a single core's cache).
    pub cpu_fanout: u32,
}

impl PixelBoxConfig {
    /// The default configuration used throughout the evaluation: 64-thread
    /// blocks, `T = n²/2 = 2048`, full variant, all optimizations.
    pub fn paper_default() -> Self {
        PixelBoxConfig {
            block_size: 64,
            grid_size: 256,
            threshold: 64 * 64 / 2,
            variant: Variant::Full,
            opts: OptimizationFlags::all(),
            cpu_fanout: 4,
        }
    }

    /// Returns a copy with a different pixelization threshold.
    pub fn with_threshold(mut self, threshold: u32) -> Self {
        self.threshold = threshold.max(1);
        self
    }

    /// Returns a copy with a different variant.
    pub fn with_variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Returns a copy with different optimization flags.
    pub fn with_opts(mut self, opts: OptimizationFlags) -> Self {
        self.opts = opts;
        self
    }

    /// Returns a copy with a different block size, keeping `T = n²/2`.
    pub fn with_block_size(mut self, block_size: u32) -> Self {
        self.block_size = block_size.max(1);
        self.threshold = (self.block_size * self.block_size / 2).max(1);
        self
    }
}

impl Default for PixelBoxConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::Rect;

    #[test]
    fn paper_default_matches_recommendation() {
        let cfg = PixelBoxConfig::paper_default();
        assert_eq!(cfg.block_size, 64);
        assert_eq!(cfg.threshold, cfg.block_size * cfg.block_size / 2);
        assert_eq!(cfg.variant, Variant::Full);
        assert_eq!(cfg.opts, OptimizationFlags::all());
    }

    #[test]
    fn builder_methods_update_fields() {
        let cfg = PixelBoxConfig::paper_default()
            .with_threshold(0)
            .with_variant(Variant::PixelOnly)
            .with_opts(OptimizationFlags::none());
        assert_eq!(cfg.threshold, 1);
        assert_eq!(cfg.variant, Variant::PixelOnly);
        assert!(!cfg.opts.shared_memory_vertices);
        let cfg = cfg.with_block_size(128);
        assert_eq!(cfg.block_size, 128);
        assert_eq!(cfg.threshold, 128 * 128 / 2);
    }

    #[test]
    fn batch_prewarm_builds_cold_tables_and_skips_resident_ones() {
        let p = RectilinearPolygon::rectangle(Rect::new(0, 0, 8, 8)).unwrap();
        let q = RectilinearPolygon::rectangle(Rect::new(4, 4, 12, 12)).unwrap();
        let pairs = vec![PolygonPair::new(p, q)];
        assert!(pairs[0].p.edge_table_if_built().is_none());
        assert_eq!(prewarm_pair_edge_tables(&pairs, 4), 2);
        assert!(pairs[0].p.edge_table_if_built().is_some());
        assert!(pairs[0].q.edge_table_if_built().is_some());
        // Everything is resident now: nothing is scheduled again.
        assert_eq!(prewarm_pair_edge_tables(&pairs, 4), 0);
        assert_eq!(build_edge_tables_batch(&[&pairs[0].p, &pairs[0].q], 1), 0);
    }

    #[test]
    fn polygon_pair_joint_mbr_covers_both() {
        let p = RectilinearPolygon::rectangle(Rect::new(0, 0, 4, 4)).unwrap();
        let q = RectilinearPolygon::rectangle(Rect::new(10, 10, 14, 14)).unwrap();
        let pair = PolygonPair::new(p.clone(), q.clone());
        let joint = pair.joint_mbr();
        assert!(joint.contains_rect(&p.mbr()));
        assert!(joint.contains_rect(&q.mbr()));
    }
}
