//! The sampling-box position predicate (Lemma 1 of the paper).

use sccg_geometry::{Rect, RectilinearPolygon};

/// Position of a sampling box relative to one polygon (§3.2, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxPosition {
    /// Every pixel of the box lies inside the polygon.
    Inside,
    /// Every pixel of the box lies outside the polygon.
    Outside,
    /// Some pixels may lie inside and some outside: the box must be
    /// partitioned further (or pixelized).
    Hover,
}

/// Computes a sampling box's position relative to a polygon.
///
/// Lemma 1 of the paper classifies a box by (i) edge-to-edge crossings,
/// (ii) polygon vertices inside the box and (iii) the box centre. Because all
/// coordinates here are integers, a polygon boundary chord can slice through
/// a box while meeting the box's edges exactly at polygon vertices, which the
/// literal three conditions would mis-classify. This implementation therefore
/// uses the equivalent — but safely conservative — form of the test: the box
/// is *uniform* exactly when no polygon edge passes through the box's open
/// interior, because only such an edge can separate two pixel centres inside
/// the box. Uniform boxes are resolved by their centre pixel (condition iii);
/// everything else hovers and is partitioned further, exactly as the paper
/// prescribes for the boundary-overlap case ("the next level of partition
/// will distinguish the contribution of each sub-sampling box").
pub fn box_position(sampling_box: &Rect, poly: &RectilinearPolygon) -> BoxPosition {
    debug_assert!(!sampling_box.is_empty());

    // Quick reject: a box disjoint from the polygon's MBR is outside.
    if !sampling_box.intersects(&poly.mbr()) {
        return BoxPosition::Outside;
    }

    if boundary_intersects_interior(sampling_box, poly) {
        return BoxPosition::Hover;
    }

    // No boundary inside the box: every pixel has the same status as the
    // centre pixel (condition (iii) of Lemma 1).
    let (cx, cy) = sampling_box.center_pixel();
    if poly.contains_pixel(cx, cy) {
        BoxPosition::Inside
    } else {
        BoxPosition::Outside
    }
}

/// Whether any edge of the polygon's boundary passes through the open
/// interior `(min_x, max_x) × (min_y, max_y)` of the box. Edges lying exactly
/// on the box border do not count: they cannot separate pixel centres that
/// are inside the box.
pub fn boundary_intersects_interior(sampling_box: &Rect, poly: &RectilinearPolygon) -> bool {
    for e in poly.edges() {
        let (a, b) = (e.a, e.b);
        if a.x == b.x {
            // Vertical edge at x = a.x spanning [ylo, yhi].
            let x = a.x;
            let (ylo, yhi) = if a.y < b.y { (a.y, b.y) } else { (b.y, a.y) };
            if x > sampling_box.min_x
                && x < sampling_box.max_x
                && ylo < sampling_box.max_y
                && yhi > sampling_box.min_y
            {
                return true;
            }
        } else {
            // Horizontal edge at y = a.y spanning [xlo, xhi].
            let y = a.y;
            let (xlo, xhi) = if a.x < b.x { (a.x, b.x) } else { (b.x, a.x) };
            if y > sampling_box.min_y
                && y < sampling_box.max_y
                && xlo < sampling_box.max_x
                && xhi > sampling_box.min_x
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::{raster, Point};

    fn l_shape() -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(0, 0),
            Point::new(8, 0),
            Point::new(8, 4),
            Point::new(4, 4),
            Point::new(4, 8),
            Point::new(0, 8),
        ])
        .unwrap()
    }

    #[test]
    fn box_far_outside_is_outside() {
        assert_eq!(
            box_position(&Rect::new(100, 100, 104, 104), &l_shape()),
            BoxPosition::Outside
        );
    }

    #[test]
    fn box_in_notch_is_outside() {
        // The notch of the L (x,y in [5..8)x[5..8)) is outside the polygon
        // even though it is inside the polygon's MBR.
        assert_eq!(
            box_position(&Rect::new(5, 5, 8, 8), &l_shape()),
            BoxPosition::Outside
        );
    }

    #[test]
    fn box_fully_inside_is_inside() {
        assert_eq!(
            box_position(&Rect::new(1, 1, 3, 3), &l_shape()),
            BoxPosition::Inside
        );
    }

    #[test]
    fn box_straddling_boundary_hovers() {
        assert_eq!(
            box_position(&Rect::new(2, 2, 6, 6), &l_shape()),
            BoxPosition::Hover
        );
    }

    #[test]
    fn box_containing_whole_polygon_hovers() {
        // Case (c) of Figure 5: the polygon lies entirely within the box.
        assert_eq!(
            box_position(&Rect::new(-5, -5, 20, 20), &l_shape()),
            BoxPosition::Hover
        );
    }

    #[test]
    fn chord_through_box_meeting_edges_at_vertices_hovers() {
        // Regression test for the boundary-overlap pitfall: the polygon's top
        // edge slices the box in half while its endpoints lie exactly on the
        // box border. The literal Lemma 1 conditions would call this box
        // uniform; the conservative test must report Hover (or the area would
        // be wrong by half the box).
        let poly = RectilinearPolygon::rectangle(Rect::new(0, 0, 4, 2)).unwrap();
        let b = Rect::new(0, 0, 4, 4);
        assert_eq!(box_position(&b, &poly), BoxPosition::Hover);
    }

    #[test]
    fn polygon_edge_on_box_border_does_not_force_hover() {
        // A polygon sharing only a border with the box must still resolve to
        // Outside (no interior pixels are affected).
        let poly = RectilinearPolygon::rectangle(Rect::new(4, 0, 8, 4)).unwrap();
        let b = Rect::new(0, 0, 4, 4);
        assert_eq!(box_position(&b, &poly), BoxPosition::Outside);
        // And the symmetric case where the box lies inside the polygon and
        // shares its left border.
        let poly = RectilinearPolygon::rectangle(Rect::new(0, 0, 8, 8)).unwrap();
        assert_eq!(box_position(&b, &poly), BoxPosition::Inside);
    }

    #[test]
    fn classification_is_consistent_with_pixel_counts() {
        // For a grid of small boxes over the L shape's neighbourhood, Inside
        // must mean "all pixels inside", Outside "no pixels inside".
        let poly = l_shape();
        for bx in -1..9 {
            for by in -1..9 {
                for (w, h) in [(2, 2), (3, 1), (1, 3), (4, 4)] {
                    let sampling_box = Rect::new(bx, by, bx + w, by + h);
                    let inside_pixels = raster::pixels_inside(&poly, &sampling_box);
                    match box_position(&sampling_box, &poly) {
                        BoxPosition::Inside => assert_eq!(
                            inside_pixels,
                            sampling_box.pixel_count(),
                            "{sampling_box:?}"
                        ),
                        BoxPosition::Outside => {
                            assert_eq!(inside_pixels, 0, "{sampling_box:?}")
                        }
                        BoxPosition::Hover => { /* will be partitioned further */ }
                    }
                }
            }
        }
    }

    #[test]
    fn single_pixel_boxes_are_exact() {
        let poly = l_shape();
        for x in -1..9 {
            for y in -1..9 {
                let b = Rect::new(x, y, x + 1, y + 1);
                let expected_inside = poly.contains_pixel(x, y);
                match box_position(&b, &poly) {
                    BoxPosition::Inside => assert!(expected_inside),
                    BoxPosition::Outside => assert!(!expected_inside),
                    BoxPosition::Hover => {
                        // Acceptable: pixelization of a hover box tests the
                        // single pixel directly and stays exact.
                    }
                }
            }
        }
    }
}
