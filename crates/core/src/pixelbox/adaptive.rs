//! Adaptive CPU/GPU split: a timing-feedback controller for the hybrid
//! backend.
//!
//! The paper's dynamic task-migration mechanism (§4.1, §4.2) moves whole
//! aggregation tasks between the GPU and the CPU based on *observed* runtime
//! signals — buffer occupancy standing in for device congestion — rather
//! than any static assignment, and §5 shows that no fixed split matches it.
//! This module generalizes that heuristic to intra-batch splits: instead of
//! sending a configured constant fraction of every batch to the GPU, a
//! [`SplitController`] watches how long each substrate took on its share of
//! the previous batches and steers the split so both substrates finish at the
//! same time — the same equalization objective the migration threads pursue
//! at task granularity.
//!
//! Mechanism, per batch:
//!
//! 1. The hybrid backend asks [`SplitController::next_fraction`] for the GPU
//!    share of the incoming batch and splits it as before (GPU prefix, CPU
//!    suffix, merged in input order).
//! 2. After the batch, it reports both substrates' pair counts and wall-clock
//!    seconds through [`SplitController::record`].
//! 3. The controller folds the observed throughputs (pairs per second) into
//!    exponentially-weighted moving averages, computes the timing-balanced
//!    target fraction `f* = R_gpu / (R_gpu + R_cpu)` (both sides finish
//!    simultaneously when the GPU gets `f*` of the work), and steps the
//!    current fraction toward `f*` with a clamped step size so one noisy
//!    observation cannot swing the split.
//!
//! The first [`SplitConfig::warmup_batches`] batches run at the configured
//! seed fraction (the legacy `hybrid_gpu_fraction`) while observations
//! accumulate. Under [`SplitPolicy::Static`] the controller never moves off
//! the seed — that is the pre-adaptive behavior, kept for configs and tests
//! that need a deterministic split. Every decision is appended to a bounded
//! [`SplitTrace`] so benches and tests can assert *convergence behavior*, not
//! just final answers.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::VecDeque;

/// How the hybrid backend chooses each batch's GPU fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitPolicy {
    /// Feedback control: converge toward the timing-balanced split (default).
    #[default]
    Adaptive,
    /// Always use the configured seed fraction (the legacy static split).
    Static,
}

/// Normalizes a GPU fraction: `NaN` falls back to an even split, everything
/// else is clamped to `[0, 1]`. This is the single normalization policy for
/// every fraction in the system.
pub(crate) fn normalize_fraction(fraction: f64) -> f64 {
    if fraction.is_nan() {
        0.5
    } else {
        fraction.clamp(0.0, 1.0)
    }
}

/// Minimum share the adaptive policy keeps on *each* substrate. Fractions
/// `0.0` and `1.0` are absorbing states for a feedback controller — a
/// substrate that receives no work is never observed, so the controller
/// could never move off the extreme. The adaptive working fraction is
/// therefore confined to `[PROBE_SHARE, 1 − PROBE_SHARE]`; pinning a true
/// extreme requires [`SplitPolicy::Static`].
pub const PROBE_SHARE: f64 = 0.05;

/// Confines an adaptive working fraction to the probe band.
fn probe_clamp(fraction: f64) -> f64 {
    normalize_fraction(fraction).clamp(PROBE_SHARE, 1.0 - PROBE_SHARE)
}

/// Floor applied to observed batch durations, in seconds (one microsecond —
/// the resolution a monotonic clock can realistically be trusted to). A
/// fast batch on a coarse timer can legitimately observe `0.0` (or a few
/// nanoseconds of) elapsed time; dividing pairs by such a duration would
/// produce an absurdly large — or infinite — throughput that poisons the
/// EWMA for many batches (`inf` never decays). Durations are therefore
/// clamped to this floor before a rate is computed, so a degenerate timer
/// reading still contributes a *bounded* "very fast" sample instead of
/// being either discarded or explosive. Negative or NaN durations remain
/// invalid and are ignored.
pub const MIN_OBSERVED_SECONDS: f64 = 1e-6;

/// Validates and clamps an observed duration: `None` for NaN or negative
/// readings, otherwise the duration floored to [`MIN_OBSERVED_SECONDS`].
fn clamp_observed_seconds(seconds: f64) -> Option<f64> {
    if seconds.is_nan() || seconds < 0.0 {
        None
    } else {
        Some(seconds.max(MIN_OBSERVED_SECONDS))
    }
}

/// Configuration of a [`SplitController`].
///
/// Marked `#[non_exhaustive]` so future fields are not breaking changes:
/// construct it with [`SplitConfig::default`], [`SplitConfig::adaptive`] or
/// [`SplitConfig::fixed`] and the `with_*` builder methods rather than a
/// struct literal.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SplitConfig {
    /// Split policy (adaptive feedback vs the static seed fraction).
    pub policy: SplitPolicy,
    /// Initial GPU fraction; also the permanent fraction under
    /// [`SplitPolicy::Static`] and the fallback while throughput observations
    /// are missing. Clamped to `[0, 1]`.
    pub seed_gpu_fraction: f64,
    /// Number of recorded batches that run at the seed fraction before the
    /// controller starts moving (observations still accumulate during
    /// warm-up).
    pub warmup_batches: u32,
    /// EWMA smoothing factor in `(0, 1]` applied to observed throughputs; `1`
    /// trusts only the latest batch.
    pub ewma_alpha: f64,
    /// Maximum change of the GPU fraction per batch, preventing oscillation
    /// when observations are noisy.
    pub max_step: f64,
    /// Number of most-recent per-batch samples retained in the trace.
    pub trace_capacity: usize,
}

impl SplitConfig {
    /// An adaptive controller seeded at `seed_gpu_fraction`.
    pub fn adaptive(seed_gpu_fraction: f64) -> Self {
        SplitConfig {
            seed_gpu_fraction: normalize_fraction(seed_gpu_fraction),
            ..SplitConfig::default()
        }
    }

    /// A static split pinned at `gpu_fraction` — the pre-adaptive behavior.
    pub fn fixed(gpu_fraction: f64) -> Self {
        SplitConfig {
            policy: SplitPolicy::Static,
            seed_gpu_fraction: normalize_fraction(gpu_fraction),
            ..SplitConfig::default()
        }
    }

    /// Returns a copy with a different split policy.
    pub fn with_policy(mut self, policy: SplitPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Returns a copy with a different seed GPU fraction.
    pub fn with_seed_gpu_fraction(mut self, fraction: f64) -> Self {
        self.seed_gpu_fraction = normalize_fraction(fraction);
        self
    }

    /// Returns a copy with a different warm-up batch count.
    pub fn with_warmup_batches(mut self, warmup_batches: u32) -> Self {
        self.warmup_batches = warmup_batches;
        self
    }

    /// Returns a copy with a different EWMA smoothing factor.
    pub fn with_ewma_alpha(mut self, ewma_alpha: f64) -> Self {
        self.ewma_alpha = ewma_alpha;
        self
    }

    /// Returns a copy with a different per-batch step clamp.
    pub fn with_max_step(mut self, max_step: f64) -> Self {
        self.max_step = max_step;
        self
    }

    /// Returns a copy with a different trace capacity.
    pub fn with_trace_capacity(mut self, trace_capacity: usize) -> Self {
        self.trace_capacity = trace_capacity;
        self
    }
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            policy: SplitPolicy::Adaptive,
            seed_gpu_fraction: 0.5,
            warmup_batches: 2,
            ewma_alpha: 0.4,
            max_step: 0.15,
            trace_capacity: 4096,
        }
    }
}

/// One batch's observed substrate timings, reported to the controller after
/// the hybrid backend merged the batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BatchObservation {
    /// Pairs computed by the GPU share.
    pub gpu_pairs: usize,
    /// Observed seconds of the GPU share — what the balancing must equalize
    /// against the CPU side. The hybrid backend reports the larger of the
    /// host wall-clock spent driving the device and the simulated device
    /// seconds, so a modelled slow device steers the split even though the
    /// functional simulation runs at host speed.
    pub gpu_seconds: f64,
    /// Simulated device seconds of the GPU share (telemetry only).
    pub gpu_simulated_seconds: f64,
    /// Pairs computed by the CPU share.
    pub cpu_pairs: usize,
    /// Wall-clock seconds of the CPU share's thread.
    pub cpu_seconds: f64,
    /// Worker threads the CPU share ran on (normalizes the CPU rate so
    /// observations from differently-sized pools are comparable).
    pub cpu_workers: usize,
    /// The GPU fraction the batch was actually split at. When a controller
    /// is shared between several backends, another backend may move the
    /// fraction between this batch's split and its `record` call, so the
    /// controller cannot assume its current fraction was the one used.
    /// `None` falls back to the controller's current fraction.
    pub fraction_used: Option<f64>,
}

/// One entry of the controller's decision log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SplitSample {
    /// Zero-based index of the recorded batch.
    pub batch: u64,
    /// GPU fraction the batch ran with.
    pub fraction: f64,
    /// Pairs the GPU share computed.
    pub gpu_pairs: usize,
    /// Pairs the CPU share computed.
    pub cpu_pairs: usize,
    /// Observed wall-clock seconds of the GPU share.
    pub gpu_seconds: f64,
    /// Observed wall-clock seconds of the CPU share.
    pub cpu_seconds: f64,
    /// GPU fraction the controller chose for the *next* batch.
    pub next_fraction: f64,
}

/// Snapshot of the controller's per-batch decision log (bounded to the most
/// recent [`SplitConfig::trace_capacity`] batches).
#[derive(Debug, Clone, Default, Serialize)]
pub struct SplitTrace {
    samples: Vec<SplitSample>,
}

impl SplitTrace {
    /// The recorded samples, oldest first.
    pub fn samples(&self) -> &[SplitSample] {
        &self.samples
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The most recently chosen GPU fraction, if any batch was recorded.
    pub fn last_fraction(&self) -> Option<f64> {
        self.samples.last().map(|s| s.next_fraction)
    }

    /// Index of the first sample whose chosen fraction is within `tolerance`
    /// of `target` — `None` if the trace never got that close. The canonical
    /// "did it converge, and how fast" assertion for tests.
    pub fn first_within(&self, target: f64, tolerance: f64) -> Option<usize> {
        self.samples
            .iter()
            .position(|s| (s.next_fraction - target).abs() <= tolerance)
    }

    /// Largest absolute fraction change between consecutive batches.
    pub fn max_step_taken(&self) -> f64 {
        self.samples
            .iter()
            .map(|s| (s.next_fraction - s.fraction).abs())
            .fold(0.0, f64::max)
    }
}

/// Mutable controller state behind the mutex.
#[derive(Debug)]
struct ControllerState {
    fraction: f64,
    batches: u64,
    /// EWMA of GPU throughput, pairs per second.
    gpu_rate: Option<f64>,
    /// EWMA of CPU throughput *per worker thread*, pairs per second.
    cpu_rate_per_worker: Option<f64>,
    /// CPU pool size of the hybrid backend feeding this controller (set by
    /// the latest hybrid observation; scales the per-worker rate back up when
    /// balancing).
    cpu_pool_workers: usize,
    trace: VecDeque<SplitSample>,
}

/// The timing-feedback controller steering the hybrid backend's GPU fraction.
///
/// Shared (`Arc`) between the hybrid backend that feeds it observations and
/// any observer — the engine, the pipeline's migration thread, benches and
/// tests reading telemetry. All methods take `&self`; state is mutex-guarded.
#[derive(Debug)]
pub struct SplitController {
    config: SplitConfig,
    state: Mutex<ControllerState>,
}

impl SplitController {
    /// Creates a controller. The seed fraction is normalized to `[0, 1]`;
    /// under [`SplitPolicy::Adaptive`] the *working* fraction is additionally
    /// confined to `[PROBE_SHARE, 1 − PROBE_SHARE]` so both substrates stay
    /// observable (see [`PROBE_SHARE`]).
    pub fn new(config: SplitConfig) -> Self {
        let seed = normalize_fraction(config.seed_gpu_fraction);
        let working_seed = match config.policy {
            SplitPolicy::Adaptive => probe_clamp(seed),
            SplitPolicy::Static => seed,
        };
        SplitController {
            config: SplitConfig {
                seed_gpu_fraction: seed,
                ewma_alpha: if config.ewma_alpha > 0.0 && config.ewma_alpha <= 1.0 {
                    config.ewma_alpha
                } else {
                    SplitConfig::default().ewma_alpha
                },
                max_step: config.max_step.abs().min(1.0),
                ..config
            },
            state: Mutex::new(ControllerState {
                fraction: working_seed,
                batches: 0,
                gpu_rate: None,
                cpu_rate_per_worker: None,
                cpu_pool_workers: 1,
                trace: VecDeque::new(),
            }),
        }
    }

    /// The controller's configuration (normalized).
    pub fn config(&self) -> &SplitConfig {
        &self.config
    }

    /// GPU fraction the next batch should run with.
    pub fn next_fraction(&self) -> f64 {
        self.state.lock().fraction
    }

    /// Number of batches recorded so far.
    pub fn batches_recorded(&self) -> u64 {
        self.state.lock().batches
    }

    /// EWMA-smoothed GPU throughput in pairs per second, once observed.
    pub fn observed_gpu_rate(&self) -> Option<f64> {
        self.state.lock().gpu_rate
    }

    /// EWMA-smoothed CPU throughput in pairs per second *per worker thread*,
    /// once observed. The pipeline's migration thread uses this to size its
    /// single-worker migration batches.
    pub fn observed_cpu_rate_per_worker(&self) -> Option<f64> {
        self.state.lock().cpu_rate_per_worker
    }

    /// Snapshot of the per-batch decision log.
    pub fn trace(&self) -> SplitTrace {
        SplitTrace {
            samples: self.state.lock().trace.iter().copied().collect(),
        }
    }

    /// Folds a CPU-only timing sample into the CPU throughput estimate
    /// without advancing the batch counter or the fraction — used by the
    /// pipeline's migration thread, whose single-worker PixelBox-CPU runs are
    /// valid per-worker rate samples but not hybrid batches.
    pub fn record_cpu_sample(&self, pairs: usize, seconds: f64, workers: usize) {
        let Some(seconds) = clamp_observed_seconds(seconds) else {
            return;
        };
        if pairs == 0 {
            return;
        }
        let per_worker = pairs as f64 / seconds / workers.max(1) as f64;
        let mut state = self.state.lock();
        state.cpu_rate_per_worker = Some(ewma(
            state.cpu_rate_per_worker,
            per_worker,
            self.config.ewma_alpha,
        ));
    }

    /// Records one hybrid batch's observation and advances the controller:
    /// updates the throughput EWMAs, then (outside warm-up, under
    /// [`SplitPolicy::Adaptive`]) steps the fraction toward the
    /// timing-balanced target with at most [`SplitConfig::max_step`] per
    /// batch. Empty observations (no pairs on either side) are ignored.
    pub fn record(&self, obs: BatchObservation) {
        if obs.gpu_pairs == 0 && obs.cpu_pairs == 0 {
            return;
        }
        let mut state = self.state.lock();
        if obs.gpu_pairs > 0 {
            // Sub-timer-resolution (or exactly-zero) durations are clamped to
            // the floor rather than skipped, so the rate stays finite and the
            // sample is not lost; see [`MIN_OBSERVED_SECONDS`].
            if let Some(seconds) = clamp_observed_seconds(obs.gpu_seconds) {
                state.gpu_rate = Some(ewma(
                    state.gpu_rate,
                    obs.gpu_pairs as f64 / seconds,
                    self.config.ewma_alpha,
                ));
            }
        }
        if obs.cpu_pairs > 0 {
            if let Some(seconds) = clamp_observed_seconds(obs.cpu_seconds) {
                let workers = obs.cpu_workers.max(1);
                state.cpu_pool_workers = workers;
                state.cpu_rate_per_worker = Some(ewma(
                    state.cpu_rate_per_worker,
                    obs.cpu_pairs as f64 / seconds / workers as f64,
                    self.config.ewma_alpha,
                ));
            }
        }

        let used = obs.fraction_used.map_or(state.fraction, normalize_fraction);
        let batch = state.batches;
        state.batches += 1;

        // Warm-up semantics: the first `warmup_batches` recorded batches run
        // at the seed, so the record of batch `warmup_batches − 1` (when
        // `state.batches` reaches the warm-up count) is the first allowed to
        // choose a new fraction — for the batch after it.
        let adapt = self.config.policy == SplitPolicy::Adaptive
            && state.batches >= u64::from(self.config.warmup_batches);
        if adapt {
            if let Some(target) = balanced_fraction(
                state.gpu_rate,
                state.cpu_rate_per_worker,
                state.cpu_pool_workers,
            ) {
                // The step is taken from the controller's own fraction (not
                // `used`, which may be stale under a shared controller) so
                // consecutive controller states never differ by more than
                // `max_step`, and stays inside the probe band.
                let current = state.fraction;
                let step = (target - current).clamp(-self.config.max_step, self.config.max_step);
                state.fraction = probe_clamp(current + step);
            }
        }

        let next = state.fraction;
        if state.trace.len() == self.config.trace_capacity.max(1) {
            state.trace.pop_front();
        }
        state.trace.push_back(SplitSample {
            batch,
            fraction: used,
            gpu_pairs: obs.gpu_pairs,
            cpu_pairs: obs.cpu_pairs,
            gpu_seconds: obs.gpu_seconds,
            cpu_seconds: obs.cpu_seconds,
            next_fraction: next,
        });
    }
}

/// EWMA update; the first observation initializes the average.
fn ewma(previous: Option<f64>, observation: f64, alpha: f64) -> f64 {
    match previous {
        Some(prev) => alpha * observation + (1.0 - alpha) * prev,
        None => observation,
    }
}

/// The GPU fraction at which both substrates finish simultaneously, given
/// their throughputs: `n·f/R_gpu = n·(1−f)/R_cpu ⇒ f = R_gpu/(R_gpu+R_cpu)`.
/// `None` until both substrates have been observed.
fn balanced_fraction(
    gpu_rate: Option<f64>,
    cpu_rate_per_worker: Option<f64>,
    cpu_pool_workers: usize,
) -> Option<f64> {
    let gpu = gpu_rate?;
    let cpu = cpu_rate_per_worker? * cpu_pool_workers.max(1) as f64;
    let total = gpu + cpu;
    // Defense in depth: rates are finite by construction (durations are
    // clamped to `MIN_OBSERVED_SECONDS` before division), but a non-finite
    // total must never produce a NaN target fraction.
    if total > 0.0 && total.is_finite() {
        Some(normalize_fraction(gpu / total))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Feeds `batches` observations derived from fixed per-pair substrate
    /// costs through the controller's real feedback loop: each batch of
    /// `batch_pairs` pairs is split at the controller's current fraction and
    /// the two shares "run" at the given rates.
    fn drive(
        controller: &SplitController,
        batches: usize,
        batch_pairs: usize,
        gpu_pairs_per_sec: f64,
        cpu_pairs_per_sec: f64,
    ) {
        for _ in 0..batches {
            let fraction = controller.next_fraction();
            let gpu_pairs = ((batch_pairs as f64) * fraction).round() as usize;
            let cpu_pairs = batch_pairs - gpu_pairs;
            controller.record(BatchObservation {
                gpu_pairs,
                gpu_seconds: gpu_pairs as f64 / gpu_pairs_per_sec,
                gpu_simulated_seconds: 0.0,
                cpu_pairs,
                cpu_seconds: cpu_pairs as f64 / cpu_pairs_per_sec,
                cpu_workers: 1,
                fraction_used: Some(fraction),
            });
        }
    }

    #[test]
    fn warmup_honors_the_seed_fraction() {
        let controller = SplitController::new(SplitConfig {
            warmup_batches: 3,
            ..SplitConfig::adaptive(0.3)
        });
        // Strongly GPU-favoring observations during warm-up must not move
        // the fraction: exactly `warmup_batches` batches run at the seed.
        for expected_batch in 0..3u64 {
            assert_eq!(controller.next_fraction(), 0.3, "batch {expected_batch}");
            drive(&controller, 1, 100, 1000.0, 10.0);
            let trace = controller.trace();
            let sample = trace.samples().last().copied().unwrap();
            assert_eq!(sample.batch, expected_batch);
            assert_eq!(sample.fraction, 0.3);
        }
        // The record of the last warm-up batch is the first allowed to move
        // the fraction, so batch `warmup_batches` already runs adapted.
        assert!(controller.next_fraction() > 0.3);
        let trace = controller.trace();
        assert!(trace.samples()[..2].iter().all(|s| s.next_fraction == 0.3));
        assert!(trace.samples()[2].next_fraction > 0.3);
    }

    #[test]
    fn adaptive_extreme_seeds_keep_a_probe_share_and_recover() {
        // Fractions 0 and 1 would be absorbing states (the unused substrate
        // is never observed); the adaptive working fraction keeps PROBE_SHARE
        // on each side, so a mis-seeded controller can still escape.
        let all_gpu = SplitController::new(SplitConfig {
            warmup_batches: 0,
            ..SplitConfig::adaptive(1.0)
        });
        assert_eq!(all_gpu.next_fraction(), 1.0 - PROBE_SHARE);
        // The CPU probe share reveals a CPU that is 9x faster than the GPU;
        // the controller walks away from the extreme.
        drive(&all_gpu, 30, 400, 100.0, 900.0);
        let fraction = all_gpu.next_fraction();
        assert!(
            (fraction - 0.1).abs() < 0.03,
            "expected ≈0.1, got {fraction}"
        );
        // The static policy still honors true extremes.
        assert_eq!(
            SplitController::new(SplitConfig::fixed(1.0)).next_fraction(),
            1.0
        );
    }

    #[test]
    fn ewma_converges_to_the_timing_balanced_split() {
        // GPU three times the CPU throughput ⇒ balanced split at 0.75.
        let controller = SplitController::new(SplitConfig::adaptive(0.5));
        drive(&controller, 40, 200, 300.0, 100.0);
        let fraction = controller.next_fraction();
        assert!(
            (fraction - 0.75).abs() < 0.02,
            "expected ≈0.75, got {fraction}"
        );
        // And the trace reached the neighborhood well before the end.
        let trace = controller.trace();
        assert!(trace.first_within(0.75, 0.05).unwrap() < 20);
    }

    #[test]
    fn step_clamping_prevents_oscillation() {
        let config = SplitConfig {
            max_step: 0.1,
            ewma_alpha: 1.0, // trust only the latest (worst case for noise)
            warmup_batches: 0,
            ..SplitConfig::adaptive(0.5)
        };
        let controller = SplitController::new(config);
        // Wildly alternating observations: the GPU looks 100x faster on even
        // batches and 100x slower on odd ones.
        for i in 0..30 {
            let (gpu_rate, cpu_rate) = if i % 2 == 0 {
                (10_000.0, 100.0)
            } else {
                (100.0, 10_000.0)
            };
            drive(&controller, 1, 100, gpu_rate, cpu_rate);
        }
        let trace = controller.trace();
        assert!(trace.max_step_taken() <= 0.1 + 1e-12);
        for pair in trace.samples().windows(2) {
            assert!((pair[1].fraction - pair[0].next_fraction).abs() < 1e-12);
        }
    }

    #[test]
    fn static_policy_never_moves_off_the_seed() {
        let controller = SplitController::new(SplitConfig::fixed(0.4));
        drive(&controller, 20, 100, 1000.0, 1.0);
        assert_eq!(controller.next_fraction(), 0.4);
        assert!(controller
            .trace()
            .samples()
            .iter()
            .all(|s| s.fraction == 0.4 && s.next_fraction == 0.4));
        // Observations are still collected for telemetry.
        assert!(controller.observed_gpu_rate().is_some());
    }

    #[test]
    fn one_sided_batches_update_only_that_substrate() {
        let controller = SplitController::new(SplitConfig::adaptive(0.5));
        controller.record(BatchObservation {
            gpu_pairs: 50,
            gpu_seconds: 0.1,
            ..BatchObservation::default()
        });
        assert!(controller.observed_gpu_rate().is_some());
        assert!(controller.observed_cpu_rate_per_worker().is_none());
        // Without a CPU rate there is no balanced target; the fraction holds.
        controller.record(BatchObservation {
            gpu_pairs: 50,
            gpu_seconds: 0.1,
            ..BatchObservation::default()
        });
        assert_eq!(controller.next_fraction(), 0.5);
    }

    #[test]
    fn empty_and_invalid_duration_observations_are_ignored() {
        let controller = SplitController::new(SplitConfig::adaptive(0.5));
        controller.record(BatchObservation::default());
        assert_eq!(controller.batches_recorded(), 0);
        controller.record(BatchObservation {
            gpu_pairs: 10,
            gpu_seconds: f64::NAN, // invalid timer reading
            cpu_pairs: 10,
            cpu_seconds: -1.0, // negative: also invalid
            cpu_workers: 2,
            ..BatchObservation::default()
        });
        assert_eq!(controller.batches_recorded(), 1);
        assert!(controller.observed_gpu_rate().is_none());
        assert!(controller.observed_cpu_rate_per_worker().is_none());
        // Invalid CPU samples from the migration path are ignored too.
        controller.record_cpu_sample(10, f64::NAN, 1);
        controller.record_cpu_sample(10, -0.5, 1);
        assert!(controller.observed_cpu_rate_per_worker().is_none());
    }

    #[test]
    fn zero_duration_observations_clamp_to_the_timer_floor() {
        // Regression: a batch faster than the timer's resolution used to
        // observe `0.0` seconds and either be discarded (losing the sample)
        // or — via `pairs / 0.0` in an earlier formulation — fold `inf`
        // into the EWMA, which never decays. The duration is now clamped to
        // `MIN_OBSERVED_SECONDS`, yielding a finite "very fast" rate.
        let controller = SplitController::new(SplitConfig {
            warmup_batches: 0,
            ..SplitConfig::adaptive(0.5)
        });
        controller.record(BatchObservation {
            gpu_pairs: 10,
            gpu_seconds: 0.0,
            cpu_pairs: 10,
            cpu_seconds: 1e-12, // below the floor: clamped, not explosive
            cpu_workers: 1,
            ..BatchObservation::default()
        });
        let gpu_rate = controller.observed_gpu_rate().unwrap();
        let cpu_rate = controller.observed_cpu_rate_per_worker().unwrap();
        assert!(gpu_rate.is_finite() && cpu_rate.is_finite());
        assert!((gpu_rate - 10.0 / MIN_OBSERVED_SECONDS).abs() < 1e-6);
        assert!((cpu_rate - 10.0 / MIN_OBSERVED_SECONDS).abs() < 1e-6);
        // The EWMA is not poisoned: subsequent realistic observations pull
        // the rate back down, and every chosen fraction stays in [0, 1].
        drive(&controller, 10, 100, 200.0, 100.0);
        assert!(controller.observed_gpu_rate().unwrap().is_finite());
        assert!(controller
            .trace()
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.next_fraction)));

        // The migration path's single-worker samples clamp the same way.
        let migration = SplitController::new(SplitConfig::adaptive(0.5));
        migration.record_cpu_sample(25, 0.0, 1);
        let rate = migration.observed_cpu_rate_per_worker().unwrap();
        assert!(rate.is_finite());
        assert!((rate - 25.0 / MIN_OBSERVED_SECONDS).abs() < 1e-6);
    }

    #[test]
    fn cpu_rate_is_normalized_per_worker() {
        let controller = SplitController::new(SplitConfig::adaptive(0.5));
        controller.record(BatchObservation {
            cpu_pairs: 800,
            cpu_seconds: 1.0,
            cpu_workers: 4,
            ..BatchObservation::default()
        });
        let per_worker = controller.observed_cpu_rate_per_worker().unwrap();
        assert!((per_worker - 200.0).abs() < 1e-9);
        // A migration-thread sample on one worker folds into the same EWMA.
        controller.record_cpu_sample(100, 1.0, 1);
        let updated = controller.observed_cpu_rate_per_worker().unwrap();
        assert!(updated < per_worker && updated > 100.0);
    }

    #[test]
    fn trace_is_bounded_to_its_capacity() {
        let controller = SplitController::new(SplitConfig {
            trace_capacity: 8,
            ..SplitConfig::adaptive(0.5)
        });
        drive(&controller, 20, 50, 200.0, 100.0);
        let trace = controller.trace();
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.samples().first().unwrap().batch, 12);
        assert_eq!(trace.samples().last().unwrap().batch, 19);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn fraction_always_stays_in_unit_interval(
            seed in -2.0f64..3.0,
            max_step in 0.0f64..2.0,
            alpha in 0.0f64..1.5,
            observations in prop::collection::vec(
                (0usize..500, 1u64..1_000_000, 0usize..500, 1u64..1_000_000, 1usize..16),
                1usize..60,
            ),
        ) {
            let controller = SplitController::new(SplitConfig {
                max_step,
                ewma_alpha: alpha,
                warmup_batches: 1,
                ..SplitConfig::adaptive(seed)
            });
            for (gpu_pairs, gpu_micros, cpu_pairs, cpu_micros, workers) in observations {
                let fraction = controller.next_fraction();
                prop_assert!((0.0..=1.0).contains(&fraction));
                controller.record(BatchObservation {
                    gpu_pairs,
                    gpu_seconds: gpu_micros as f64 * 1e-6,
                    gpu_simulated_seconds: 0.0,
                    cpu_pairs,
                    cpu_seconds: cpu_micros as f64 * 1e-6,
                    cpu_workers: workers,
                    fraction_used: Some(fraction),
                });
            }
            let trace = controller.trace();
            for sample in trace.samples() {
                prop_assert!((0.0..=1.0).contains(&sample.fraction));
                prop_assert!((0.0..=1.0).contains(&sample.next_fraction));
            }
            prop_assert!(trace.max_step_taken() <= controller.config().max_step + 1e-12);
        }
    }
}
