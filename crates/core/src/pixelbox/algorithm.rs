//! Device-independent core of the PixelBox algorithm.
//!
//! Both the CPU port and the simulated-GPU kernel execute the same sampling
//! box / pixelization logic; they differ only in how the work is scheduled
//! and costed. This module implements that shared logic once and records an
//! execution [`Trace`] — counts of pixel tests, box-position tests,
//! partitionings, stack activity and shoelace work — which the GPU kernel
//! converts into simulated cycles and which tests use to verify algorithmic
//! claims (e.g. that sampling boxes reduce per-pixel work, Figure 8).

use super::position::{box_position, BoxPosition};
use super::{PairAreas, PolygonPair, Variant};
use sccg_geometry::{Rect, RectilinearPolygon};

/// Execution statistics of one pair (or a batch, traces are additive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Trace {
    /// Number of pixel-in-polygon tests performed.
    pub pixel_tests: u64,
    /// Total polygon edges examined across all pixel tests.
    pub pixel_edge_ops: u64,
    /// Number of sampling-box position tests performed.
    pub box_tests: u64,
    /// Total polygon edges examined across all box-position tests.
    pub box_edge_ops: u64,
    /// Number of sampling boxes partitioned into sub-boxes.
    pub partitions: u64,
    /// Number of sub-boxes pushed onto the stack.
    pub stack_pushes: u64,
    /// Number of sampling boxes resolved without further partitioning.
    pub resolved_boxes: u64,
    /// Number of sampling boxes finished by pixelization.
    pub pixelized_boxes: u64,
    /// Number of SIMD pixelization rounds: for every pixelized region, the
    /// number of pixels rounded up to the partition fanout (= GPU thread
    /// block size). This is the lane-padded work a thread block actually
    /// issues, which is what makes very small pixelization thresholds
    /// inefficient (§3.4).
    pub pixel_rounds: u64,
    /// Deepest stack occupancy observed.
    pub max_stack_depth: u64,
    /// Polygon vertices visited by shoelace area computations.
    pub shoelace_vertices: u64,
}

impl Trace {
    /// Adds another trace into this one.
    pub fn merge(&mut self, other: &Trace) {
        self.pixel_tests += other.pixel_tests;
        self.pixel_edge_ops += other.pixel_edge_ops;
        self.box_tests += other.box_tests;
        self.box_edge_ops += other.box_edge_ops;
        self.partitions += other.partitions;
        self.stack_pushes += other.stack_pushes;
        self.resolved_boxes += other.resolved_boxes;
        self.pixelized_boxes += other.pixelized_boxes;
        self.pixel_rounds += other.pixel_rounds;
        self.max_stack_depth = self.max_stack_depth.max(other.max_stack_depth);
        self.shoelace_vertices += other.shoelace_vertices;
    }
}

/// Computes the areas of intersection and union for one polygon pair using
/// the requested variant, recording an execution trace.
///
/// * `threshold` — pixelization threshold `T` (boxes with fewer pixels are
///   finished per-pixel).
/// * `fanout` — number of sub-boxes a partitioned sampling box is split into
///   (the GPU uses the thread-block size; the CPU port uses a small fanout).
pub fn compute_pair(
    pair: &PolygonPair,
    threshold: u32,
    fanout: u32,
    variant: Variant,
) -> (PairAreas, Trace) {
    let mut trace = Trace::default();
    let joint = pair.joint_mbr();
    let threshold = i64::from(threshold.max(1));
    let fanout = fanout.max(2);

    let areas = match variant {
        Variant::PixelOnly => pixelize_region(&joint, pair, fanout, &mut trace),
        Variant::Full => {
            let area_p = shoelace(&pair.p, &mut trace);
            let area_q = shoelace(&pair.q, &mut trace);
            let intersection =
                sampling_box_scan(pair, &joint, threshold, fanout, false, &mut trace).intersection;
            PairAreas {
                intersection,
                union: area_p + area_q - intersection,
            }
        }
        Variant::NoSep => sampling_box_scan(pair, &joint, threshold, fanout, true, &mut trace),
    };
    (areas, trace)
}

/// Shoelace area with trace accounting (`PolyArea` in Algorithm 1).
fn shoelace(poly: &RectilinearPolygon, trace: &mut Trace) -> i64 {
    trace.shoelace_vertices += poly.vertex_count() as u64;
    poly.area()
}

/// Exhaustive pixelization of a region: classifies every pixel against both
/// polygons (the `PixelOnly` path, and the tail phase of the full algorithm).
fn pixelize_region(region: &Rect, pair: &PolygonPair, lanes: u32, trace: &mut Trace) -> PairAreas {
    let mut intersection = 0i64;
    let mut union = 0i64;
    let p_edges = pair.p.vertex_count() as u64;
    let q_edges = pair.q.vertex_count() as u64;
    trace.pixel_rounds += (region.pixel_count().max(0) as u64).div_ceil(u64::from(lanes.max(1)));
    for (x, y) in region.pixels() {
        let in_p = pair.p.contains_pixel(x, y);
        let in_q = pair.q.contains_pixel(x, y);
        trace.pixel_tests += 2;
        trace.pixel_edge_ops += p_edges + q_edges;
        if in_p && in_q {
            intersection += 1;
        }
        if in_p || in_q {
            union += 1;
        }
    }
    PairAreas {
        intersection,
        union,
    }
}

/// Contribution state of one sampling box to one accumulated quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Contribution {
    /// The box contributes all of its pixels.
    All,
    /// The box contributes none of its pixels.
    None,
    /// Cannot be decided at this granularity.
    Unknown,
}

fn intersection_contribution(p1: BoxPosition, p2: BoxPosition) -> Contribution {
    use BoxPosition::*;
    match (p1, p2) {
        (Outside, _) | (_, Outside) => Contribution::None,
        (Inside, Inside) => Contribution::All,
        _ => Contribution::Unknown,
    }
}

fn union_contribution(p1: BoxPosition, p2: BoxPosition) -> Contribution {
    use BoxPosition::*;
    match (p1, p2) {
        (Inside, _) | (_, Inside) => Contribution::All,
        (Outside, Outside) => Contribution::None,
        _ => Contribution::Unknown,
    }
}

/// The sampling-box phase: a depth-first scan over a stack of boxes,
/// partitioning hovering boxes and pixelizing boxes below the threshold.
///
/// When `track_union` is false (the full PixelBox variant) only the
/// intersection needs resolving; when true (`PixelBox-NoSep`) a box stays
/// unresolved until both its intersection and union contributions are known,
/// which requires more partitionings (§3.2).
fn sampling_box_scan(
    pair: &PolygonPair,
    initial: &Rect,
    threshold: i64,
    fanout: u32,
    track_union: bool,
    trace: &mut Trace,
) -> PairAreas {
    let mut intersection = 0i64;
    let mut union = 0i64;
    let mut stack: Vec<Rect> = vec![*initial];
    trace.stack_pushes += 1;

    // Sub-box grid dimensions: as square as possible for the requested fanout.
    let cols = (fanout as f64).sqrt().ceil() as u32;
    let rows = fanout.div_ceil(cols);

    while let Some(sampling_box) = stack.pop() {
        trace.max_stack_depth = trace.max_stack_depth.max(stack.len() as u64 + 1);
        if sampling_box.is_empty() {
            continue;
        }
        if sampling_box.pixel_count() < threshold {
            // Pixelization phase (Algorithm 1, lines 22–28).
            let local = pixelize_region(&sampling_box, pair, fanout, trace);
            intersection += local.intersection;
            if track_union {
                union += local.union;
            }
            trace.pixelized_boxes += 1;
            continue;
        }
        // Partition phase (Algorithm 1, lines 30–39).
        trace.partitions += 1;
        for idx in 0..cols * rows {
            let sub = sampling_box.subdivide(cols, rows, idx);
            if sub.is_empty() {
                continue;
            }
            let pos_p = box_position(&sub, &pair.p);
            let pos_q = box_position(&sub, &pair.q);
            trace.box_tests += 2;
            trace.box_edge_ops += pair.p.vertex_count() as u64 + pair.q.vertex_count() as u64;

            let inter_c = intersection_contribution(pos_p, pos_q);
            let union_c = union_contribution(pos_p, pos_q);
            let resolved = inter_c != Contribution::Unknown
                && (!track_union || union_c != Contribution::Unknown);
            if resolved {
                if inter_c == Contribution::All {
                    intersection += sub.pixel_count();
                }
                if track_union && union_c == Contribution::All {
                    union += sub.pixel_count();
                }
                trace.resolved_boxes += 1;
            } else {
                stack.push(sub);
                trace.stack_pushes += 1;
            }
        }
    }

    PairAreas {
        intersection,
        union,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::{raster, Point};

    fn pair(p: RectilinearPolygon, q: RectilinearPolygon) -> PolygonPair {
        PolygonPair::new(p, q)
    }

    fn rect_poly(x0: i32, y0: i32, x1: i32, y1: i32) -> RectilinearPolygon {
        RectilinearPolygon::rectangle(Rect::new(x0, y0, x1, y1)).unwrap()
    }

    fn l_shape(offset: i32, size: i32) -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(offset, offset),
            Point::new(offset + size, offset),
            Point::new(offset + size, offset + size / 2),
            Point::new(offset + size / 2, offset + size / 2),
            Point::new(offset + size / 2, offset + size),
            Point::new(offset, offset + size),
        ])
        .unwrap()
    }

    fn assert_all_variants_exact(p: &RectilinearPolygon, q: &RectilinearPolygon) {
        let (ri, ru) = raster::intersection_union_area(p, q);
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            for threshold in [1u32, 16, 256, 100_000] {
                for fanout in [4u32, 16, 64] {
                    let (areas, _) =
                        compute_pair(&pair(p.clone(), q.clone()), threshold, fanout, variant);
                    assert_eq!(
                        (areas.intersection, areas.union),
                        (ri, ru),
                        "variant {variant:?} T={threshold} fanout={fanout}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_overlapping_rectangles() {
        assert_all_variants_exact(&rect_poly(0, 0, 20, 20), &rect_poly(10, 5, 32, 27));
    }

    #[test]
    fn exact_on_disjoint_rectangles() {
        assert_all_variants_exact(&rect_poly(0, 0, 8, 8), &rect_poly(30, 30, 40, 40));
    }

    #[test]
    fn exact_on_nested_polygons() {
        assert_all_variants_exact(&rect_poly(0, 0, 40, 40), &l_shape(8, 16));
    }

    #[test]
    fn exact_on_l_shapes() {
        assert_all_variants_exact(&l_shape(0, 24), &l_shape(6, 24));
    }

    #[test]
    fn exact_on_identical_polygons() {
        let p = l_shape(3, 20);
        assert_all_variants_exact(&p, &p.clone());
    }

    #[test]
    fn sampling_boxes_reduce_pixel_tests_for_large_pairs() {
        // The central claim behind Figure 8: with sampling boxes enabled the
        // number of per-pixel tests is far lower than exhaustive pixelization
        // once polygons are large.
        let p = l_shape(0, 96);
        let q = l_shape(10, 96);
        let (_, t_pixel) =
            compute_pair(&pair(p.clone(), q.clone()), 1 << 30, 64, Variant::PixelOnly);
        let (_, t_full) = compute_pair(&pair(p, q), 2048, 64, Variant::Full);
        assert!(
            t_full.pixel_tests * 2 < t_pixel.pixel_tests,
            "full {} vs pixel-only {}",
            t_full.pixel_tests,
            t_pixel.pixel_tests
        );
        assert!(t_full.partitions > 0);
        assert!(t_full.resolved_boxes > 0);
    }

    #[test]
    fn nosep_needs_at_least_as_many_partitions_as_full() {
        // Computing the union directly forces extra partitionings (§3.2).
        let p = l_shape(0, 96);
        let q = l_shape(30, 96);
        let (_, t_full) = compute_pair(&pair(p.clone(), q.clone()), 512, 64, Variant::Full);
        let (_, t_nosep) = compute_pair(&pair(p, q), 512, 64, Variant::NoSep);
        assert!(t_nosep.partitions >= t_full.partitions);
        assert!(t_nosep.pixel_tests >= t_full.pixel_tests);
    }

    #[test]
    fn pixel_only_never_partitions() {
        let p = l_shape(0, 32);
        let q = l_shape(4, 32);
        let (_, t) = compute_pair(&pair(p, q), 64, 16, Variant::PixelOnly);
        assert_eq!(t.partitions, 0);
        assert_eq!(t.box_tests, 0);
        assert!(t.pixel_tests > 0);
    }

    #[test]
    fn trace_merge_accumulates() {
        let p = l_shape(0, 16);
        let q = l_shape(2, 16);
        let (_, t1) = compute_pair(&pair(p.clone(), q.clone()), 64, 4, Variant::Full);
        let (_, t2) = compute_pair(&pair(p, q), 64, 4, Variant::Full);
        let mut merged = t1;
        merged.merge(&t2);
        assert_eq!(merged.pixel_tests, t1.pixel_tests * 2);
        assert_eq!(merged.box_tests, t1.box_tests * 2);
        assert_eq!(merged.max_stack_depth, t1.max_stack_depth);
    }

    #[test]
    fn scaled_pairs_keep_exactness() {
        // Mirrors the Figure 8 stress test: scaling coordinates must not
        // break exactness of any variant.
        let p = l_shape(0, 20);
        let q = l_shape(5, 20);
        for scale in 1..=5 {
            let ps = p.scale(scale).unwrap();
            let qs = q.scale(scale).unwrap();
            let (ri, ru) = raster::intersection_union_area(&ps, &qs);
            let (areas, _) = compute_pair(&pair(ps, qs), 2048, 64, Variant::Full);
            assert_eq!((areas.intersection, areas.union), (ri, ru), "scale {scale}");
        }
    }
}
