//! Device-independent core of the PixelBox algorithm.
//!
//! Both the CPU port and the simulated-GPU kernel execute the same sampling
//! box / pixelization logic; they differ only in how the work is scheduled
//! and costed. This module implements that shared logic once and records an
//! execution [`Trace`] — counts of pixel tests, box-position tests,
//! partitionings, stack activity and shoelace work — which the GPU kernel
//! converts into simulated cycles and which tests use to verify algorithmic
//! claims (e.g. that sampling boxes reduce per-pixel work, Figure 8).

use super::position::{box_position, BoxPosition};
use super::{PairAreas, PolygonPair, Variant};
use sccg_geometry::edge_table::{overlap_len_in, span_len_in};
use sccg_geometry::{EdgeTable, Rect, RectilinearPolygon};

/// Execution statistics of one pair (or a batch, traces are additive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Trace {
    /// Number of pixel-in-polygon tests performed.
    pub pixel_tests: u64,
    /// Total polygon edges examined across all pixel tests.
    pub pixel_edge_ops: u64,
    /// Number of sampling-box position tests performed.
    pub box_tests: u64,
    /// Total polygon edges examined across all box-position tests.
    pub box_edge_ops: u64,
    /// Number of sampling boxes partitioned into sub-boxes.
    pub partitions: u64,
    /// Number of sub-boxes pushed onto the stack.
    pub stack_pushes: u64,
    /// Number of sampling boxes resolved without further partitioning.
    pub resolved_boxes: u64,
    /// Number of sampling boxes finished by pixelization.
    pub pixelized_boxes: u64,
    /// Number of SIMD pixelization rounds: for every pixelized region, the
    /// number of pixels rounded up to the partition fanout (= GPU thread
    /// block size). This is the lane-padded work a thread block actually
    /// issues, which is what makes very small pixelization thresholds
    /// inefficient (§3.4).
    pub pixel_rounds: u64,
    /// Deepest stack occupancy observed.
    pub max_stack_depth: u64,
    /// Polygon vertices visited by shoelace area computations.
    pub shoelace_vertices: u64,
}

impl Trace {
    /// Adds another trace into this one.
    pub fn merge(&mut self, other: &Trace) {
        self.pixel_tests += other.pixel_tests;
        self.pixel_edge_ops += other.pixel_edge_ops;
        self.box_tests += other.box_tests;
        self.box_edge_ops += other.box_edge_ops;
        self.partitions += other.partitions;
        self.stack_pushes += other.stack_pushes;
        self.resolved_boxes += other.resolved_boxes;
        self.pixelized_boxes += other.pixelized_boxes;
        self.pixel_rounds += other.pixel_rounds;
        self.max_stack_depth = self.max_stack_depth.max(other.max_stack_depth);
        self.shoelace_vertices += other.shoelace_vertices;
    }
}

/// Which kernel finishes sub-threshold sampling boxes (and the `PixelOnly`
/// variant's whole-region scan).
///
/// Both kernels produce bit-identical areas *and* bit-identical [`Trace`]s:
/// the trace counts what the per-pixel semantics of §3.1 *would* do, which
/// the scanline kernel accounts for analytically (the GPU simulator's cost
/// model and the Figure 8 claims are defined over those per-pixel counts,
/// regardless of how the host computes the areas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PixelizeKernel {
    /// Interval-scanline fast path: per pixel row, intersect/merge the two
    /// polygons' inside x-intervals (from their cached
    /// [`EdgeTable`]s) with pure interval
    /// arithmetic — O(rows × crossing edges), never touching individual
    /// pixels.
    #[default]
    Scanline,
    /// The seed per-pixel loop: classify every pixel of the region against
    /// both polygons with the O(edges) even–odd ray cast. Retained as the
    /// brute-force oracle for the equivalence suite and the
    /// `pixelize_dense` benchmark baseline.
    PerPixel,
}

/// Computes the areas of intersection and union for one polygon pair using
/// the requested variant, recording an execution trace. Pixelized regions
/// are finished with the interval-scanline fast path
/// ([`PixelizeKernel::Scanline`]).
///
/// * `threshold` — pixelization threshold `T` (boxes with fewer pixels are
///   finished by pixelization).
/// * `fanout` — number of sub-boxes a partitioned sampling box is split into
///   (the GPU uses the thread-block size; the CPU port uses a small fanout).
pub fn compute_pair(
    pair: &PolygonPair,
    threshold: u32,
    fanout: u32,
    variant: Variant,
) -> (PairAreas, Trace) {
    compute_pair_with(pair, threshold, fanout, variant, PixelizeKernel::Scanline)
}

/// [`compute_pair`] with the retained per-pixel pixelization loop
/// ([`PixelizeKernel::PerPixel`]) — the pre-fast-path behaviour, kept as the
/// independent oracle: areas and traces must match [`compute_pair`] exactly.
pub fn compute_pair_reference(
    pair: &PolygonPair,
    threshold: u32,
    fanout: u32,
    variant: Variant,
) -> (PairAreas, Trace) {
    compute_pair_with(pair, threshold, fanout, variant, PixelizeKernel::PerPixel)
}

/// [`compute_pair`] with an explicit pixelization kernel.
pub fn compute_pair_with(
    pair: &PolygonPair,
    threshold: u32,
    fanout: u32,
    variant: Variant,
    kernel: PixelizeKernel,
) -> (PairAreas, Trace) {
    let mut trace = Trace::default();
    let joint = pair.joint_mbr();
    let threshold = i64::from(threshold.max(1));
    let fanout = fanout.max(2);
    // Hoisted per-pair edge counts: `vertex_count()` is loop-invariant across
    // the whole scan, so it is resolved once here instead of once per
    // pixelized region (and once per sub-box in the partition loop).
    let edges = PairEdges::of(pair);
    // The scanline kernel's row-reuse cache lives for exactly one scan; the
    // per-pixel oracle never touches the edge tables, so it gets none.
    let mut cache = match kernel {
        PixelizeKernel::Scanline => Some(RowCache::new(pair.p.edge_table(), pair.q.edge_table())),
        PixelizeKernel::PerPixel => None,
    };

    let areas = match variant {
        Variant::PixelOnly => pixelize_region(
            &joint, pair, &edges, fanout, kernel, true, &mut cache, &mut trace,
        ),
        Variant::Full => {
            let area_p = shoelace(&pair.p, &mut trace);
            let area_q = shoelace(&pair.q, &mut trace);
            let intersection = sampling_box_scan(
                pair, &edges, &joint, threshold, fanout, false, kernel, &mut cache, &mut trace,
            )
            .intersection;
            PairAreas {
                intersection,
                union: area_p + area_q - intersection,
            }
        }
        Variant::NoSep => sampling_box_scan(
            pair, &edges, &joint, threshold, fanout, true, kernel, &mut cache, &mut trace,
        ),
    };
    (areas, trace)
}

/// Number of direct-mapped slots in a [`RowCache`]. Sixteen rows cover the
/// row overlap between the sub-boxes a partitioned sampling box produces
/// (fanout grids are at most a few boxes tall) while keeping the cache small
/// enough to initialise per pair without measurable cost.
const ROW_CACHE_SLOTS: usize = 16;

/// One cached pixel row of a pair: both polygons' resolved crossing lists
/// and the first row at which either list may change.
#[derive(Clone, Copy)]
struct RowSlot<'t> {
    y: i32,
    /// `min` of the two tables' run ends: every row in `[y, run_end)` shares
    /// both crossing lists.
    run_end: i32,
    p_xs: &'t [i32],
    q_xs: &'t [i32],
    valid: bool,
}

/// Per-scan row-interval reuse layer: a small direct-mapped cache keyed by
/// row `y`, holding both polygons' resolved crossing lists. Adjacent sampling
/// boxes of one scan share pixel rows (vertically-split siblings cover the
/// same y-range), so the second and later boxes touching a row hit the cache
/// and skip both slab binary searches instead of re-deriving the lists per
/// box. The cache borrows the pair's [`EdgeTable`]s and lives for exactly one
/// scan, so it can never serve rows from a previous pair.
struct RowCache<'t> {
    p: &'t EdgeTable,
    q: &'t EdgeTable,
    slots: [RowSlot<'t>; ROW_CACHE_SLOTS],
}

impl<'t> RowCache<'t> {
    fn new(p: &'t EdgeTable, q: &'t EdgeTable) -> Self {
        RowCache {
            p,
            q,
            slots: [RowSlot {
                y: 0,
                run_end: 0,
                p_xs: &[],
                q_xs: &[],
                valid: false,
            }; ROW_CACHE_SLOTS],
        }
    }

    /// The resolved crossing lists for row `y` (filled from the edge tables
    /// on a miss). `run_end` is always `> y`, so run sweeps through the
    /// cache advance.
    #[inline]
    fn row(&mut self, y: i32) -> RowSlot<'t> {
        let idx = (y as u32 as usize) % ROW_CACHE_SLOTS;
        let slot = self.slots[idx];
        if slot.valid && slot.y == y {
            return slot;
        }
        let rp = self.p.row(y);
        let rq = self.q.row(y);
        let fresh = RowSlot {
            y,
            run_end: rp.run_end().min(rq.run_end()),
            p_xs: rp.crossings(),
            q_xs: rq.crossings(),
            valid: true,
        };
        self.slots[idx] = fresh;
        fresh
    }
}

/// Per-pair edge counts, computed once per scan and threaded through the hot
/// loops (they feed every pixel-test and box-test trace charge).
#[derive(Debug, Clone, Copy)]
struct PairEdges {
    p: u64,
    q: u64,
}

impl PairEdges {
    fn of(pair: &PolygonPair) -> Self {
        PairEdges {
            p: pair.p.vertex_count() as u64,
            q: pair.q.vertex_count() as u64,
        }
    }

    #[inline]
    fn total(&self) -> u64 {
        self.p + self.q
    }
}

/// Shoelace area with trace accounting (`PolyArea` in Algorithm 1).
fn shoelace(poly: &RectilinearPolygon, trace: &mut Trace) -> i64 {
    trace.shoelace_vertices += poly.vertex_count() as u64;
    poly.area()
}

/// Pixelization of a region: resolves the region's intersection/union pixel
/// counts (the `PixelOnly` path, and the tail phase of the full algorithm).
///
/// The trace charges are identical for both kernels — they count the §3.1
/// per-pixel semantics (2 containment tests and one full edge walk per
/// pixel), which the scanline kernel accounts for analytically: a region of
/// `n` pixels always contributes `2n` pixel tests, `n × (|p| + |q|)` edge
/// operations and `⌈n / lanes⌉` SIMD rounds, exactly what the per-pixel loop
/// accumulates one pixel at a time.
///
/// When `need_union` is false (the full variant's tail phase, which derives
/// the union indirectly and discards this function's union) the scanline
/// kernel runs one overlap pass per row instead of three interval passes.
/// The per-pixel oracle is kept verbatim — its (unused) union costs nothing
/// extra to the comparison, since it is the baseline being measured.
#[allow(clippy::too_many_arguments)]
fn pixelize_region(
    region: &Rect,
    pair: &PolygonPair,
    edges: &PairEdges,
    lanes: u32,
    kernel: PixelizeKernel,
    need_union: bool,
    cache: &mut Option<RowCache<'_>>,
    trace: &mut Trace,
) -> PairAreas {
    let pixels = region.pixel_count().max(0) as u64;
    trace.pixel_rounds += pixels.div_ceil(u64::from(lanes.max(1)));
    trace.pixel_tests += 2 * pixels;
    trace.pixel_edge_ops += pixels * edges.total();

    let mut intersection = 0i64;
    let mut union = 0i64;
    match kernel {
        PixelizeKernel::Scanline => {
            // Run sweep through the pair's row cache: each run of rows
            // sharing both crossing lists is resolved once (or taken from
            // the cache when an earlier sampling box already touched it)
            // and its interval arithmetic multiplied by the run length.
            let cache = cache
                .as_mut()
                .expect("scanline kernel runs with a row cache");
            let mut y = region.min_y;
            while y < region.max_y {
                let row = cache.row(y);
                let run_end = row.run_end.min(region.max_y);
                let rows = i64::from(run_end) - i64::from(y);
                let row_inter = overlap_len_in(row.p_xs, row.q_xs, region.min_x, region.max_x);
                intersection += rows * row_inter;
                if need_union {
                    let row_sum = span_len_in(row.p_xs, region.min_x, region.max_x)
                        + span_len_in(row.q_xs, region.min_x, region.max_x);
                    union += rows * (row_sum - row_inter);
                }
                y = run_end;
            }
        }
        PixelizeKernel::PerPixel => {
            for (x, y) in region.pixels() {
                let in_p = pair.p.contains_pixel(x, y);
                let in_q = pair.q.contains_pixel(x, y);
                if in_p && in_q {
                    intersection += 1;
                }
                if in_p || in_q {
                    union += 1;
                }
            }
        }
    }
    PairAreas {
        intersection,
        union,
    }
}

/// Contribution state of one sampling box to one accumulated quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Contribution {
    /// The box contributes all of its pixels.
    All,
    /// The box contributes none of its pixels.
    None,
    /// Cannot be decided at this granularity.
    Unknown,
}

fn intersection_contribution(p1: BoxPosition, p2: BoxPosition) -> Contribution {
    use BoxPosition::*;
    match (p1, p2) {
        (Outside, _) | (_, Outside) => Contribution::None,
        (Inside, Inside) => Contribution::All,
        _ => Contribution::Unknown,
    }
}

fn union_contribution(p1: BoxPosition, p2: BoxPosition) -> Contribution {
    use BoxPosition::*;
    match (p1, p2) {
        (Inside, _) | (_, Inside) => Contribution::All,
        (Outside, Outside) => Contribution::None,
        _ => Contribution::Unknown,
    }
}

/// The sampling-box phase: a depth-first scan over a stack of boxes,
/// partitioning hovering boxes and pixelizing boxes below the threshold.
///
/// When `track_union` is false (the full PixelBox variant) only the
/// intersection needs resolving; when true (`PixelBox-NoSep`) a box stays
/// unresolved until both its intersection and union contributions are known,
/// which requires more partitionings (§3.2).
#[allow(clippy::too_many_arguments)]
fn sampling_box_scan(
    pair: &PolygonPair,
    edges: &PairEdges,
    initial: &Rect,
    threshold: i64,
    fanout: u32,
    track_union: bool,
    kernel: PixelizeKernel,
    cache: &mut Option<RowCache<'_>>,
    trace: &mut Trace,
) -> PairAreas {
    let mut intersection = 0i64;
    let mut union = 0i64;
    // The initial box rides in `next` so a scan that never partitions (the
    // common case for large thresholds) performs zero heap allocations; the
    // trace still charges it as a push like any other stacked box.
    let mut stack: Vec<Rect> = Vec::new();
    let mut next = Some(*initial);
    trace.stack_pushes += 1;

    // Sub-box grid dimensions: as square as possible for the requested fanout.
    let cols = (fanout as f64).sqrt().ceil() as u32;
    let rows = fanout.div_ceil(cols);

    while let Some(sampling_box) = next.take().or_else(|| stack.pop()) {
        trace.max_stack_depth = trace.max_stack_depth.max(stack.len() as u64 + 1);
        if sampling_box.is_empty() {
            continue;
        }
        if sampling_box.pixel_count() < threshold {
            // Pixelization phase (Algorithm 1, lines 22–28).
            let local = pixelize_region(
                &sampling_box,
                pair,
                edges,
                fanout,
                kernel,
                track_union,
                cache,
                trace,
            );
            intersection += local.intersection;
            if track_union {
                union += local.union;
            }
            trace.pixelized_boxes += 1;
            continue;
        }
        // Partition phase (Algorithm 1, lines 30–39).
        trace.partitions += 1;
        for idx in 0..cols * rows {
            let sub = sampling_box.subdivide(cols, rows, idx);
            if sub.is_empty() {
                continue;
            }
            let pos_p = box_position(&sub, &pair.p);
            let pos_q = box_position(&sub, &pair.q);
            trace.box_tests += 2;
            trace.box_edge_ops += edges.total();

            let inter_c = intersection_contribution(pos_p, pos_q);
            let union_c = union_contribution(pos_p, pos_q);
            let resolved = inter_c != Contribution::Unknown
                && (!track_union || union_c != Contribution::Unknown);
            if resolved {
                if inter_c == Contribution::All {
                    intersection += sub.pixel_count();
                }
                if track_union && union_c == Contribution::All {
                    union += sub.pixel_count();
                }
                trace.resolved_boxes += 1;
            } else {
                stack.push(sub);
                trace.stack_pushes += 1;
            }
        }
    }

    PairAreas {
        intersection,
        union,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_geometry::{raster, Point};

    fn pair(p: RectilinearPolygon, q: RectilinearPolygon) -> PolygonPair {
        PolygonPair::new(p, q)
    }

    fn rect_poly(x0: i32, y0: i32, x1: i32, y1: i32) -> RectilinearPolygon {
        RectilinearPolygon::rectangle(Rect::new(x0, y0, x1, y1)).unwrap()
    }

    fn l_shape(offset: i32, size: i32) -> RectilinearPolygon {
        RectilinearPolygon::new(vec![
            Point::new(offset, offset),
            Point::new(offset + size, offset),
            Point::new(offset + size, offset + size / 2),
            Point::new(offset + size / 2, offset + size / 2),
            Point::new(offset + size / 2, offset + size),
            Point::new(offset, offset + size),
        ])
        .unwrap()
    }

    fn assert_all_variants_exact(p: &RectilinearPolygon, q: &RectilinearPolygon) {
        let (ri, ru) = raster::intersection_union_area(p, q);
        for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
            for threshold in [1u32, 16, 256, 100_000] {
                for fanout in [4u32, 16, 64] {
                    let (areas, _) =
                        compute_pair(&pair(p.clone(), q.clone()), threshold, fanout, variant);
                    assert_eq!(
                        (areas.intersection, areas.union),
                        (ri, ru),
                        "variant {variant:?} T={threshold} fanout={fanout}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_on_overlapping_rectangles() {
        assert_all_variants_exact(&rect_poly(0, 0, 20, 20), &rect_poly(10, 5, 32, 27));
    }

    #[test]
    fn exact_on_disjoint_rectangles() {
        assert_all_variants_exact(&rect_poly(0, 0, 8, 8), &rect_poly(30, 30, 40, 40));
    }

    #[test]
    fn exact_on_nested_polygons() {
        assert_all_variants_exact(&rect_poly(0, 0, 40, 40), &l_shape(8, 16));
    }

    #[test]
    fn exact_on_l_shapes() {
        assert_all_variants_exact(&l_shape(0, 24), &l_shape(6, 24));
    }

    #[test]
    fn exact_on_identical_polygons() {
        let p = l_shape(3, 20);
        assert_all_variants_exact(&p, &p.clone());
    }

    #[test]
    fn sampling_boxes_reduce_pixel_tests_for_large_pairs() {
        // The central claim behind Figure 8: with sampling boxes enabled the
        // number of per-pixel tests is far lower than exhaustive pixelization
        // once polygons are large.
        let p = l_shape(0, 96);
        let q = l_shape(10, 96);
        let (_, t_pixel) =
            compute_pair(&pair(p.clone(), q.clone()), 1 << 30, 64, Variant::PixelOnly);
        let (_, t_full) = compute_pair(&pair(p, q), 2048, 64, Variant::Full);
        assert!(
            t_full.pixel_tests * 2 < t_pixel.pixel_tests,
            "full {} vs pixel-only {}",
            t_full.pixel_tests,
            t_pixel.pixel_tests
        );
        assert!(t_full.partitions > 0);
        assert!(t_full.resolved_boxes > 0);
    }

    #[test]
    fn nosep_needs_at_least_as_many_partitions_as_full() {
        // Computing the union directly forces extra partitionings (§3.2).
        let p = l_shape(0, 96);
        let q = l_shape(30, 96);
        let (_, t_full) = compute_pair(&pair(p.clone(), q.clone()), 512, 64, Variant::Full);
        let (_, t_nosep) = compute_pair(&pair(p, q), 512, 64, Variant::NoSep);
        assert!(t_nosep.partitions >= t_full.partitions);
        assert!(t_nosep.pixel_tests >= t_full.pixel_tests);
    }

    #[test]
    fn pixel_only_never_partitions() {
        let p = l_shape(0, 32);
        let q = l_shape(4, 32);
        let (_, t) = compute_pair(&pair(p, q), 64, 16, Variant::PixelOnly);
        assert_eq!(t.partitions, 0);
        assert_eq!(t.box_tests, 0);
        assert!(t.pixel_tests > 0);
    }

    #[test]
    fn scanline_and_per_pixel_kernels_are_bit_identical() {
        // Areas AND traces: the scanline fast path must be observationally
        // indistinguishable from the retained per-pixel loop.
        let shapes = [
            (l_shape(0, 24), l_shape(6, 24)),
            (rect_poly(0, 0, 20, 20), rect_poly(10, 5, 32, 27)),
            (rect_poly(0, 0, 8, 8), rect_poly(30, 30, 40, 40)),
            (rect_poly(0, 0, 40, 40), l_shape(8, 16)),
        ];
        for (p, q) in shapes {
            for variant in [Variant::PixelOnly, Variant::NoSep, Variant::Full] {
                for threshold in [1u32, 7, 64, 4096] {
                    let pair = pair(p.clone(), q.clone());
                    let fast = compute_pair(&pair, threshold, 16, variant);
                    let brute = compute_pair_reference(&pair, threshold, 16, variant);
                    assert_eq!(fast, brute, "variant {variant:?} T={threshold}");
                }
            }
        }
    }

    #[test]
    fn trace_merge_accumulates() {
        let p = l_shape(0, 16);
        let q = l_shape(2, 16);
        let (_, t1) = compute_pair(&pair(p.clone(), q.clone()), 64, 4, Variant::Full);
        let (_, t2) = compute_pair(&pair(p, q), 64, 4, Variant::Full);
        let mut merged = t1;
        merged.merge(&t2);
        assert_eq!(merged.pixel_tests, t1.pixel_tests * 2);
        assert_eq!(merged.box_tests, t1.box_tests * 2);
        assert_eq!(merged.max_stack_depth, t1.max_stack_depth);
    }

    #[test]
    fn scaled_pairs_keep_exactness() {
        // Mirrors the Figure 8 stress test: scaling coordinates must not
        // break exactness of any variant.
        let p = l_shape(0, 20);
        let q = l_shape(5, 20);
        for scale in 1..=5 {
            let ps = p.scale(scale).unwrap();
            let qs = q.scale(scale).unwrap();
            let (ri, ru) = raster::intersection_union_area(&ps, &qs);
            let (areas, _) = compute_pair(&pair(ps, qs), 2048, 64, Variant::Full);
            assert_eq!((areas.intersection, areas.union), (ri, ru), "scale {scale}");
        }
    }
}
