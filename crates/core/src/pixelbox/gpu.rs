//! The PixelBox GPU kernel, executed on the simulated SIMT device.
//!
//! This is the Rust rendition of Algorithm 1: polygon pairs are distributed
//! round-robin over thread blocks; each block processes its pairs with the
//! sampling-box / pixelization scan, keeping the sampling-box stack and
//! (optionally) the polygon vertex data in shared memory. The functional
//! results come from the shared [`algorithm`](super::algorithm) core; the
//! execution [`Trace`] of each pair is converted into simulated cycles,
//! shared-memory traffic, bank conflicts, global transactions and barriers on
//! the block's [`BlockContext`], honouring the optimization toggles compared
//! in Figure 9.

use super::algorithm::{compute_pair, Trace};
use super::{PairAreas, PixelBoxConfig, PolygonPair};
use sccg_gpu_sim::{BlockContext, Device, LaunchConfig, LaunchStats};
use std::sync::Arc;

/// Bytes of shared memory reserved per block for the sampling-box stack
/// (five sub-stacks of `block_size` entries each, as in §3.3).
fn stack_shared_bytes(block_size: u32) -> u32 {
    5 * 4 * block_size * 2
}

/// Bytes of shared memory reserved per block for staged polygon vertices
/// when the shared-memory optimization is enabled (a fixed-size region; only
/// polygons that fit are staged, §3.3).
const SHARED_VERTEX_REGION_BYTES: u32 = 2 * 1024;

/// Result of one batched PixelBox launch.
#[derive(Debug, Clone)]
pub struct GpuBatchResult {
    /// Areas of intersection and union per input pair, in input order.
    pub areas: Vec<PairAreas>,
    /// Simulated execution statistics of the kernel launch.
    pub launch: LaunchStats,
    /// Simulated host→device and device→host transfer time, in seconds.
    pub transfer_seconds: f64,
    /// Aggregated algorithm trace over all pairs.
    pub trace: Trace,
}

impl GpuBatchResult {
    /// Total simulated GPU time (transfer + kernel), in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.transfer_seconds + self.launch.time_seconds
    }
}

/// A PixelBox execution engine bound to one simulated GPU device.
#[derive(Debug, Clone)]
pub struct GpuPixelBox {
    device: Arc<Device>,
}

impl GpuPixelBox {
    /// Creates an engine on the given device.
    pub fn new(device: Arc<Device>) -> Self {
        GpuPixelBox { device }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    /// Computes the areas of intersection and union for a batch of polygon
    /// pairs with one kernel launch (plus the host↔device transfers for the
    /// batch), mirroring the aggregator stage's batched invocation (§4.1).
    pub fn compute_batch(&self, pairs: &[PolygonPair], config: &PixelBoxConfig) -> GpuBatchResult {
        let mut areas = vec![PairAreas::default(); pairs.len()];
        let mut trace_total = Trace::default();
        if pairs.is_empty() {
            return GpuBatchResult {
                areas,
                launch: LaunchStats::default(),
                transfer_seconds: 0.0,
                trace: trace_total,
            };
        }

        // Host → device: vertex arrays and MBRs of every pair; device → host:
        // the per-thread partial areas (block_size values per pair).
        let input_bytes: u64 = pairs
            .iter()
            .map(|pair| 8 * (pair.p.vertex_count() + pair.q.vertex_count()) as u64 + 16)
            .sum();
        let output_bytes = 8 * u64::from(config.block_size) * pairs.len() as u64;
        let mut transfer_seconds = self.device.transfer(input_bytes);

        let grid_dim = config.grid_size.min(pairs.len() as u32).max(1);
        let shared_bytes = stack_shared_bytes(config.block_size)
            + if config.opts.shared_memory_vertices {
                SHARED_VERTEX_REGION_BYTES
            } else {
                0
            };
        let launch_config =
            LaunchConfig::new(grid_dim, config.block_size).with_shared_mem(shared_bytes);

        // Results and traces are collected per block through interior indices
        // (round-robin assignment, Algorithm 1 line 10).
        let areas_cell = std::cell::RefCell::new(&mut areas);
        let trace_cell = std::cell::RefCell::new(&mut trace_total);
        let launch = self.device.launch(&launch_config, |block| {
            let mut pair_idx = block.block_idx() as usize;
            while pair_idx < pairs.len() {
                let pair = &pairs[pair_idx];
                let (pair_areas, trace) =
                    compute_pair(pair, config.threshold, config.block_size, config.variant);
                charge_pair(block, pair, &trace, config);
                areas_cell.borrow_mut()[pair_idx] = pair_areas;
                trace_cell.borrow_mut().merge(&trace);
                pair_idx += grid_dim as usize;
            }
        });
        let (_, _) = (areas_cell, trace_cell); // end the interior borrows

        transfer_seconds += self.device.transfer(output_bytes);
        GpuBatchResult {
            areas,
            launch,
            transfer_seconds,
            trace: trace_total,
        }
    }
}

/// Converts the algorithmic trace of one pair into simulated costs on the
/// block context, honouring the optimization flags.
fn charge_pair(
    block: &mut BlockContext,
    pair: &PolygonPair,
    trace: &Trace,
    config: &PixelBoxConfig,
) {
    let lanes = u64::from(block.threads().max(1));
    let opts = &config.opts;

    // Instruction cost constants (per polygon edge examined and per pixel).
    const OPS_PER_EDGE_TEST: u64 = 8;
    const OPS_PER_PIXEL_FIXED: u64 = 6;
    const OPS_PER_SHOELACE_VERTEX: u64 = 6;
    const VERTEX_BYTES: u32 = 8;

    // --- Input staging -----------------------------------------------------
    let total_vertices = (pair.p.vertex_count() + pair.q.vertex_count()) as u64;
    let vertex_loads = total_vertices.div_ceil(lanes).max(1);
    // MBR + bookkeeping.
    block.global_access(16, true);
    // Vertex data is always read from global memory once.
    block.global_stream(VERTEX_BYTES, true, vertex_loads);
    let vertices_fit_shared =
        total_vertices * u64::from(VERTEX_BYTES) <= u64::from(SHARED_VERTEX_REGION_BYTES);
    let use_shared_vertices = opts.shared_memory_vertices && vertices_fit_shared;
    if use_shared_vertices {
        // Stage into shared memory (one conflict-free store per vertex load).
        block.shared_access_uniform(vertex_loads);
        block.sync_threads();
    }

    // --- Edge-examination work (pixel tests + box-position tests) ----------
    // Pixel tests execute in lane-padded rounds: every pixelized region costs
    // whole thread-block rounds even when it holds fewer pixels than lanes
    // (the inefficiency that makes very small thresholds T slow, §3.4). Each
    // round examines every edge of both polygons.
    let pixel_round_edge_ops = trace.pixel_rounds * total_vertices;
    // Box-position tests: one sub-box per lane per partition round.
    let box_edge_ops = trace.box_edge_ops.div_ceil(lanes);
    let per_lane_edge_ops = pixel_round_edge_ops + box_edge_ops;
    block.charge_alu(per_lane_edge_ops * OPS_PER_EDGE_TEST);
    // Per-pixel fixed work (index arithmetic, predicate accumulation).
    let per_lane_pixels = trace.pixel_tests.div_ceil(lanes);
    block.charge_alu(per_lane_pixels * OPS_PER_PIXEL_FIXED);
    // Each edge examined needs its vertex pair: from shared memory when
    // staged (broadcast, conflict-free), from (L1-cached, streamed) global
    // memory otherwise.
    if use_shared_vertices {
        block.shared_access_uniform(per_lane_edge_ops);
    } else {
        block.global_stream(VERTEX_BYTES, true, per_lane_edge_ops);
    }
    // Edge-loop bookkeeping; unrolling by 4 divides the per-iteration
    // overhead (§3.3, "Perform loop unrolling").
    let unroll = if opts.unroll_loops { 4 } else { 1 };
    block.charge_loop_overhead(per_lane_edge_ops.div_ceil(unroll));

    // --- Shoelace polygon areas (Full variant only charges when used) ------
    if trace.shoelace_vertices > 0 {
        let per_lane = trace.shoelace_vertices.div_ceil(lanes);
        block.charge_alu(per_lane * OPS_PER_SHOELACE_VERTEX);
        if use_shared_vertices {
            block.shared_access_uniform(per_lane);
        } else {
            block.global_stream(VERTEX_BYTES, true, per_lane);
        }
    }

    // --- Sampling-box stack traffic ----------------------------------------
    // Every partition round pushes `block_size` sub-boxes (five words each)
    // and every processed box is popped by all threads; pushes are laid out
    // either as five separate arrays (stride-1, conflict-free) or as an
    // array of five-word structures padded to eight words (stride-8, 8-way
    // conflicts on a 32-bank device), per §3.3 "Avoid memory bank conflicts".
    if trace.partitions > 0 {
        let stride: u32 = if opts.avoid_bank_conflicts { 1 } else { 8 };
        let lanes_u32 = block.threads();
        let mut addresses = Vec::with_capacity(lanes_u32 as usize);
        for field in 0..5u32 {
            addresses.clear();
            for tid in 0..lanes_u32 {
                addresses.push(tid * stride + field * if stride == 1 { lanes_u32 } else { 1 });
            }
            // One push per partition round per field.
            for _ in 0..trace.partitions {
                block.shared_access(&addresses);
            }
        }
        // Position tests write/read the flag column and pop boxes.
        block.shared_access_uniform(trace.stack_pushes.div_ceil(lanes) * 5);
    }

    // --- Synchronization ----------------------------------------------------
    // One barrier per stack pop (Algorithm 1, line 17): pops equal pushes.
    block.sync_threads_many(trace.stack_pushes.max(1));

    // --- Result write-back ---------------------------------------------------
    block.global_access(8, true);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pixelbox::{OptimizationFlags, Variant};
    use sccg_geometry::{raster, Rect, RectilinearPolygon};
    use sccg_gpu_sim::DeviceConfig;

    fn device() -> Arc<Device> {
        Arc::new(Device::new(DeviceConfig::gtx580()))
    }

    fn sample_pairs(n: i32) -> Vec<PolygonPair> {
        (0..n)
            .map(|i| {
                let p = RectilinearPolygon::rectangle(Rect::new(
                    3 * i,
                    2 * i,
                    3 * i + 12 + (i % 4),
                    2 * i + 9,
                ))
                .unwrap();
                let q = RectilinearPolygon::rectangle(Rect::new(
                    3 * i + 4,
                    2 * i + 3,
                    3 * i + 17,
                    2 * i + 13,
                ))
                .unwrap();
                PolygonPair::new(p, q)
            })
            .collect()
    }

    #[test]
    fn gpu_results_match_raster_oracle() {
        let engine = GpuPixelBox::new(device());
        let pairs = sample_pairs(25);
        let result = engine.compute_batch(&pairs, &PixelBoxConfig::paper_default());
        assert_eq!(result.areas.len(), pairs.len());
        for (pair, areas) in pairs.iter().zip(&result.areas) {
            let (ri, ru) = raster::intersection_union_area(&pair.p, &pair.q);
            assert_eq!((areas.intersection, areas.union), (ri, ru));
        }
        assert!(result.launch.cycles > 0);
        assert!(result.transfer_seconds > 0.0);
        assert!(result.total_seconds() > result.launch.time_seconds);
    }

    #[test]
    fn gpu_and_cpu_agree() {
        let engine = GpuPixelBox::new(device());
        let pairs = sample_pairs(40);
        let config = PixelBoxConfig::paper_default();
        let gpu = engine.compute_batch(&pairs, &config);
        let cpu = super::super::cpu::compute_batch_cpu(&pairs, &config, 2);
        assert_eq!(gpu.areas, cpu);
    }

    #[test]
    fn empty_batch_is_free() {
        let engine = GpuPixelBox::new(device());
        let result = engine.compute_batch(&[], &PixelBoxConfig::paper_default());
        assert!(result.areas.is_empty());
        assert_eq!(result.launch.cycles, 0);
        assert_eq!(result.transfer_seconds, 0.0);
    }

    #[test]
    fn variants_produce_identical_areas_but_different_costs() {
        let engine = GpuPixelBox::new(device());
        // Scale pairs up so the sampling-box machinery actually engages.
        let pairs: Vec<PolygonPair> = sample_pairs(10)
            .into_iter()
            .map(|pair| PolygonPair::new(pair.p.scale(6).unwrap(), pair.q.scale(6).unwrap()))
            .collect();
        let base = PixelBoxConfig::paper_default();
        let full = engine.compute_batch(&pairs, &base.with_variant(Variant::Full));
        let nosep = engine.compute_batch(&pairs, &base.with_variant(Variant::NoSep));
        let pixel_only = engine.compute_batch(&pairs, &base.with_variant(Variant::PixelOnly));
        assert_eq!(full.areas, nosep.areas);
        assert_eq!(full.areas, pixel_only.areas);
        // Figure 8 shape: PixelBox <= PixelBox-NoSep <= PixelOnly in time.
        assert!(full.launch.cycles <= nosep.launch.cycles);
        assert!(nosep.launch.cycles < pixel_only.launch.cycles);
    }

    #[test]
    fn optimizations_reduce_cost_without_changing_results() {
        let engine = GpuPixelBox::new(device());
        let pairs: Vec<PolygonPair> = sample_pairs(10)
            .into_iter()
            .map(|pair| PolygonPair::new(pair.p.scale(5).unwrap(), pair.q.scale(5).unwrap()))
            .collect();
        let base = PixelBoxConfig::paper_default();
        let optimized = engine.compute_batch(&pairs, &base.with_opts(OptimizationFlags::all()));
        let unoptimized = engine.compute_batch(&pairs, &base.with_opts(OptimizationFlags::none()));
        assert_eq!(optimized.areas, unoptimized.areas);
        assert!(optimized.launch.cycles < unoptimized.launch.cycles);
        // Bank conflicts only appear when the stack is interleaved.
        assert!(optimized.launch.bank_conflicts <= unoptimized.launch.bank_conflicts);
    }

    #[test]
    fn batching_amortizes_transfer_overhead() {
        let engine = GpuPixelBox::new(device());
        let pairs = sample_pairs(64);
        let config = PixelBoxConfig::paper_default();
        let batched = engine.compute_batch(&pairs, &config).transfer_seconds;
        let unbatched: f64 = pairs
            .chunks(1)
            .map(|chunk| engine.compute_batch(chunk, &config).transfer_seconds)
            .sum();
        assert!(batched < unbatched);
    }
}
