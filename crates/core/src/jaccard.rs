//! Jaccard similarity aggregation (Formula 1 of the paper).
//!
//! Digital-pathology studies use the variant `J'`: the average of the
//! per-pair ratios `r(p, q) = ‖p∩q‖ / ‖p∪q‖` over every pair of polygons
//! (one from each segmentation result) whose intersection is non-empty.
//! Pairs whose MBRs intersect but whose polygons do not actually overlap are
//! excluded. Missing polygons are reported separately as counts.

use sccg_clip::PairAreas;

/// Streaming accumulator for the `J'` similarity of one image (or one tile).
///
/// Accumulators can be merged, so per-tile partial results computed by the
/// aggregator stage — possibly on different devices — combine into the
/// whole-image score exactly as in the paper's pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct JaccardAccumulator {
    ratio_sum: f64,
    intersecting_pairs: u64,
    candidate_pairs: u64,
    intersection_area: i64,
    union_area: i64,
}

impl JaccardAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds in the exact areas of one candidate pair (a pair whose MBRs
    /// intersect). Pairs with an empty intersection are counted but do not
    /// contribute to the ratio average.
    pub fn add_pair(&mut self, areas: PairAreas) {
        self.candidate_pairs += 1;
        if let Some(ratio) = areas.ratio() {
            self.ratio_sum += ratio;
            self.intersecting_pairs += 1;
            self.intersection_area += areas.intersection;
            self.union_area += areas.union;
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &JaccardAccumulator) {
        self.ratio_sum += other.ratio_sum;
        self.intersecting_pairs += other.intersecting_pairs;
        self.candidate_pairs += other.candidate_pairs;
        self.intersection_area += other.intersection_area;
        self.union_area += other.union_area;
    }

    /// Finalizes the accumulator into a summary.
    pub fn summary(&self) -> JaccardSummary {
        JaccardSummary {
            similarity: if self.intersecting_pairs == 0 {
                0.0
            } else {
                self.ratio_sum / self.intersecting_pairs as f64
            },
            intersecting_pairs: self.intersecting_pairs,
            candidate_pairs: self.candidate_pairs,
            total_intersection_area: self.intersection_area,
            total_union_area: self.union_area,
        }
    }
}

/// Final similarity report for one cross-comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JaccardSummary {
    /// `J'`: the average per-pair Jaccard ratio over actually-intersecting pairs.
    pub similarity: f64,
    /// Number of pairs with a non-empty intersection.
    pub intersecting_pairs: u64,
    /// Number of candidate pairs examined (MBR intersection).
    pub candidate_pairs: u64,
    /// Sum of `‖p∩q‖` over intersecting pairs.
    pub total_intersection_area: i64,
    /// Sum of `‖p∪q‖` over intersecting pairs.
    pub total_union_area: i64,
}

impl JaccardSummary {
    /// The `J'` similarity guarded against degenerate values: a summary with
    /// no intersecting pairs (or one hand-built with a zero-denominator
    /// ratio) reports `0.0`, never `NaN` or an infinity. Every ratio
    /// accessor on the request route goes through this guard.
    pub fn similarity_or_zero(&self) -> f64 {
        if self.similarity.is_finite() {
            self.similarity
        } else {
            0.0
        }
    }

    /// The aggregate-area Jaccard coefficient `Σ‖p∩q‖ / Σ‖p∪q‖`, the `J`
    /// variant mentioned in §2.1 (useful as a cross-check on `J'`).
    pub fn aggregate_jaccard(&self) -> f64 {
        if self.total_union_area == 0 {
            0.0
        } else {
            self.total_intersection_area as f64 / self.total_union_area as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn areas(i: i64, u: i64) -> PairAreas {
        PairAreas {
            intersection: i,
            union: u,
        }
    }

    #[test]
    fn empty_accumulator_reports_zero_similarity() {
        let summary = JaccardAccumulator::new().summary();
        assert_eq!(summary.similarity, 0.0);
        assert_eq!(summary.candidate_pairs, 0);
        assert_eq!(summary.aggregate_jaccard(), 0.0);
    }

    #[test]
    fn average_of_ratios() {
        let mut acc = JaccardAccumulator::new();
        acc.add_pair(areas(50, 100)); // 0.5
        acc.add_pair(areas(75, 100)); // 0.75
        acc.add_pair(areas(0, 120)); // excluded from the average
        let s = acc.summary();
        assert!((s.similarity - 0.625).abs() < 1e-12);
        assert_eq!(s.intersecting_pairs, 2);
        assert_eq!(s.candidate_pairs, 3);
        assert_eq!(s.total_intersection_area, 125);
        assert_eq!(s.total_union_area, 200);
        assert!((s.aggregate_jaccard() - 0.625).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let pairs = [areas(10, 20), areas(5, 50), areas(0, 10), areas(30, 30)];
        let mut all = JaccardAccumulator::new();
        for p in pairs {
            all.add_pair(p);
        }
        let mut left = JaccardAccumulator::new();
        let mut right = JaccardAccumulator::new();
        for p in &pairs[..2] {
            left.add_pair(*p);
        }
        for p in &pairs[2..] {
            right.add_pair(*p);
        }
        left.merge(&right);
        assert_eq!(left.summary(), all.summary());
    }

    #[test]
    fn identical_sets_have_similarity_one() {
        let mut acc = JaccardAccumulator::new();
        for _ in 0..10 {
            acc.add_pair(areas(42, 42));
        }
        assert!((acc.summary().similarity - 1.0).abs() < 1e-12);
    }
}
