//! High-level cross-comparison API.
//!
//! [`CrossComparison`] wires the substrates together for the common case of
//! comparing two in-memory segmentation results for the same tile or image:
//! build MBR lists, filter candidate pairs with the Hilbert R-tree join,
//! compute exact areas with PixelBox through a [`ComputeBackend`] (GPU, CPU
//! or hybrid) and aggregate the `J'` similarity. The full streaming system
//! with parsing, bounded buffers and task migration lives in
//! [`crate::pipeline`]; this type is the "library entry point" a downstream
//! user reaches for first.

use crate::jaccard::{JaccardAccumulator, JaccardSummary};
use crate::pixelbox::{
    AggregationDevice, ComputeBackend, HybridBackend, PairAreas, PixelBoxConfig, PolygonPair,
    SplitConfig, SplitController, SplitPolicy,
};
use sccg_geometry::text::PolygonRecord;
use sccg_geometry::Rect;
use sccg_gpu_sim::{Device, DeviceConfig, LaunchStats};
use sccg_rtree::mbr_join;
use std::sync::Arc;

/// Configuration of a [`CrossComparison`] engine.
///
/// Marked `#[non_exhaustive]` so future fields are not breaking changes:
/// construct it with [`EngineConfig::default`] and the `with_*` builder
/// methods rather than a struct literal.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// PixelBox parameters.
    pub pixelbox: PixelBoxConfig,
    /// Which substrate performs the area computations.
    pub device: AggregationDevice,
    /// Simulated GPU to use when `device` involves the GPU.
    pub gpu: DeviceConfig,
    /// CPU worker threads to use when `device` involves the CPU.
    pub cpu_workers: usize,
    /// Seed GPU fraction when `device` is [`AggregationDevice::Hybrid`]
    /// (clamped to `[0, 1]`): the warm-up/fallback fraction under
    /// [`SplitPolicy::Adaptive`], the permanent fraction under
    /// [`SplitPolicy::Static`].
    pub hybrid_gpu_fraction: f64,
    /// How the hybrid split evolves across batches: adaptive timing feedback
    /// (default) or pinned at `hybrid_gpu_fraction`.
    pub split_policy: SplitPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pixelbox: PixelBoxConfig::paper_default(),
            device: AggregationDevice::Gpu,
            gpu: DeviceConfig::gtx580(),
            cpu_workers: crate::parallel::default_workers(),
            hybrid_gpu_fraction: 0.5,
            split_policy: SplitPolicy::default(),
        }
    }
}

impl EngineConfig {
    /// The hybrid split configuration this engine config describes.
    pub fn split_config(&self) -> SplitConfig {
        SplitConfig::adaptive(self.hybrid_gpu_fraction).with_policy(self.split_policy)
    }

    /// Returns a copy with different PixelBox parameters.
    pub fn with_pixelbox(mut self, pixelbox: PixelBoxConfig) -> Self {
        self.pixelbox = pixelbox;
        self
    }

    /// Returns a copy dispatching to a different substrate.
    pub fn with_device(mut self, device: AggregationDevice) -> Self {
        self.device = device;
        self
    }

    /// Returns a copy with a different simulated GPU configuration.
    pub fn with_gpu(mut self, gpu: DeviceConfig) -> Self {
        self.gpu = gpu;
        self
    }

    /// Returns a copy with a different CPU worker count.
    pub fn with_cpu_workers(mut self, cpu_workers: usize) -> Self {
        self.cpu_workers = cpu_workers;
        self
    }

    /// Returns a copy with a different seed GPU fraction for the hybrid
    /// split.
    pub fn with_hybrid_gpu_fraction(mut self, fraction: f64) -> Self {
        self.hybrid_gpu_fraction = fraction;
        self
    }

    /// Returns a copy with a different hybrid split policy.
    pub fn with_split_policy(mut self, policy: SplitPolicy) -> Self {
        self.split_policy = policy;
        self
    }
}

/// Result of cross-comparing two polygon sets.
#[derive(Debug, Clone)]
pub struct CrossComparisonReport {
    /// The `J'` similarity of the two sets (Formula 1).
    pub similarity: f64,
    /// Full aggregation summary.
    pub summary: JaccardSummary,
    /// Number of candidate pairs produced by the MBR join.
    pub candidate_pairs: usize,
    /// Per-pair areas, in candidate-pair order.
    pub pair_areas: Vec<PairAreas>,
    /// Simulated GPU launch statistics, when the GPU executed (part of) the
    /// batch.
    pub gpu_launch: Option<LaunchStats>,
    /// Simulated GPU seconds (transfers + kernel), when the GPU was used.
    pub gpu_seconds: Option<f64>,
}

/// Cross-comparison engine binding a compute backend and a PixelBox
/// configuration.
#[derive(Debug, Clone)]
pub struct CrossComparison {
    config: EngineConfig,
    gpu: Arc<Device>,
    backend: Arc<dyn ComputeBackend>,
    split_controller: Option<Arc<SplitController>>,
}

impl CrossComparison {
    /// Creates an engine; the simulated GPU device is instantiated eagerly so
    /// repeated comparisons share it (and its cumulative statistics).
    pub fn new(config: EngineConfig) -> Self {
        let gpu = Arc::new(Device::new(config.gpu.clone()));
        Self::with_device(config, gpu)
    }

    /// Creates an engine sharing an existing simulated device.
    pub fn with_device(config: EngineConfig, gpu: Arc<Device>) -> Self {
        let (backend, split_controller) = config.device.backend_with_controller(
            Arc::clone(&gpu),
            config.cpu_workers,
            config.split_config(),
        );
        CrossComparison {
            config,
            gpu,
            backend,
            split_controller,
        }
    }

    /// Creates an engine sharing an existing simulated device *and* an
    /// existing hybrid [`SplitController`], so a fleet of engines serving
    /// concurrent queries pools its timing observations: a fresh engine
    /// starts from the fleet's learned split instead of re-running warm-up.
    ///
    /// Only [`AggregationDevice::Hybrid`] consults a controller; for the
    /// single-substrate devices this behaves exactly like
    /// [`CrossComparison::with_device`] and the controller is ignored.
    pub fn with_shared_controller(
        config: EngineConfig,
        gpu: Arc<Device>,
        controller: Arc<SplitController>,
    ) -> Self {
        if config.device != AggregationDevice::Hybrid {
            return Self::with_device(config, gpu);
        }
        let backend: Arc<dyn ComputeBackend> = Arc::new(HybridBackend::with_controller(
            Arc::clone(&gpu),
            config.cpu_workers,
            Arc::clone(&controller),
        ));
        CrossComparison {
            config,
            gpu,
            backend,
            split_controller: Some(controller),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The simulated GPU device used by this engine.
    pub fn device(&self) -> &Arc<Device> {
        &self.gpu
    }

    /// The compute backend this engine dispatches area computations to.
    pub fn backend(&self) -> &Arc<dyn ComputeBackend> {
        &self.backend
    }

    /// The hybrid split controller, when `device` is
    /// [`AggregationDevice::Hybrid`] — exposes per-batch split telemetry
    /// ([`SplitController::trace`]) and observed substrate rates.
    pub fn split_controller(&self) -> Option<&Arc<SplitController>> {
        self.split_controller.as_ref()
    }

    /// Filters candidate pairs of two record sets by MBR intersection,
    /// returning the pairs in join order. Exposed so callers can inspect the
    /// filter stage's output (and so benches can time it separately).
    pub fn filter_pairs(
        &self,
        first: &[PolygonRecord],
        second: &[PolygonRecord],
    ) -> Vec<PolygonPair> {
        let left: Vec<Rect> = first.iter().map(|r| r.polygon.mbr()).collect();
        let right: Vec<Rect> = second.iter().map(|r| r.polygon.mbr()).collect();
        mbr_join(&left, &right)
            .into_iter()
            .map(|(i, j)| {
                PolygonPair::new(
                    first[i as usize].polygon.clone(),
                    second[j as usize].polygon.clone(),
                )
            })
            .collect()
    }

    /// Cross-compares two polygon record sets (typically the two segmentation
    /// results of one tile) and returns the similarity report.
    pub fn compare_records(
        &self,
        first: &[PolygonRecord],
        second: &[PolygonRecord],
    ) -> CrossComparisonReport {
        let pairs = self.filter_pairs(first, second);
        self.compare_pairs(&pairs)
    }

    /// Like [`CrossComparison::compare_records`] but with an explicit
    /// PixelBox configuration overriding the engine's own — the serving layer
    /// uses this so every engine of a pool computes a query under the *same*
    /// per-request configuration (variant, threshold), keeping sharded
    /// results bit-identical regardless of which engine served each shard.
    pub fn compare_records_with(
        &self,
        first: &[PolygonRecord],
        second: &[PolygonRecord],
        pixelbox: &PixelBoxConfig,
    ) -> CrossComparisonReport {
        let pairs = self.filter_pairs(first, second);
        self.compare_pairs_with(&pairs, pixelbox)
    }

    /// Cross-compares an already-filtered batch of polygon pairs.
    pub fn compare_pairs(&self, pairs: &[PolygonPair]) -> CrossComparisonReport {
        self.compare_pairs_with(pairs, &self.config.pixelbox)
    }

    /// Like [`CrossComparison::compare_pairs`] but with an explicit PixelBox
    /// configuration overriding the engine's own.
    pub fn compare_pairs_with(
        &self,
        pairs: &[PolygonPair],
        pixelbox: &PixelBoxConfig,
    ) -> CrossComparisonReport {
        let batch = self.backend.compute_batch(pairs, pixelbox);

        let mut acc = JaccardAccumulator::new();
        for areas in &batch.areas {
            acc.add_pair(*areas);
        }
        let summary = acc.summary();
        CrossComparisonReport {
            similarity: summary.similarity,
            summary,
            candidate_pairs: pairs.len(),
            pair_areas: batch.areas,
            gpu_launch: batch.launch,
            gpu_seconds: batch.simulated_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_datagen::{generate_tile_pair, TileSpec};

    fn tile() -> sccg_datagen::TilePair {
        generate_tile_pair(&TileSpec {
            target_polygons: 80,
            width: 512,
            height: 512,
            seed: 21,
            ..TileSpec::default()
        })
    }

    fn engine_on(device: AggregationDevice) -> CrossComparison {
        CrossComparison::new(EngineConfig {
            device,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn gpu_engine_produces_plausible_similarity() {
        let tile = tile();
        let engine = CrossComparison::new(EngineConfig::default());
        let report = engine.compare_records(&tile.first, &tile.second);
        assert!(report.candidate_pairs > 0);
        assert!(report.similarity > 0.3 && report.similarity <= 1.0);
        assert!(report.gpu_launch.is_some());
        assert!(report.gpu_seconds.unwrap() > 0.0);
        assert_eq!(report.pair_areas.len(), report.candidate_pairs);
    }

    #[test]
    fn cpu_gpu_and_hybrid_engines_agree_exactly() {
        // The backend-agreement invariant at the engine level: every
        // substrate — including both hybrid split policies — produces
        // bit-identical per-pair areas and J'.
        let tile = tile();
        let gpu_report =
            engine_on(AggregationDevice::Gpu).compare_records(&tile.first, &tile.second);
        let cpu_report =
            engine_on(AggregationDevice::Cpu).compare_records(&tile.first, &tile.second);
        let hybrid_report =
            engine_on(AggregationDevice::Hybrid).compare_records(&tile.first, &tile.second);
        let static_hybrid_report = CrossComparison::new(EngineConfig {
            device: AggregationDevice::Hybrid,
            split_policy: SplitPolicy::Static,
            ..EngineConfig::default()
        })
        .compare_records(&tile.first, &tile.second);
        assert_eq!(gpu_report.pair_areas, cpu_report.pair_areas);
        assert_eq!(gpu_report.pair_areas, hybrid_report.pair_areas);
        assert_eq!(gpu_report.pair_areas, static_hybrid_report.pair_areas);
        assert_eq!(gpu_report.similarity, cpu_report.similarity);
        assert_eq!(gpu_report.similarity, hybrid_report.similarity);
        assert_eq!(gpu_report.summary, hybrid_report.summary);
        assert_eq!(gpu_report.summary, static_hybrid_report.summary);
        assert!(cpu_report.gpu_launch.is_none());
        // The hybrid engine really used the GPU for its share.
        assert!(hybrid_report.gpu_launch.is_some());
    }

    #[test]
    fn hybrid_engine_exposes_split_telemetry() {
        let tile = tile();
        let engine = engine_on(AggregationDevice::Hybrid);
        assert!(engine.split_controller().is_some());
        assert!(engine_on(AggregationDevice::Gpu)
            .split_controller()
            .is_none());
        // Repeated comparisons feed the controller; the trace grows and every
        // recorded fraction stays in bounds while results stay identical.
        let first = engine.compare_records(&tile.first, &tile.second);
        for _ in 0..3 {
            let again = engine.compare_records(&tile.first, &tile.second);
            assert_eq!(first.pair_areas, again.pair_areas);
        }
        let controller = engine.split_controller().unwrap();
        assert_eq!(controller.batches_recorded(), 4);
        assert!(controller
            .trace()
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.next_fraction)));
    }

    #[test]
    fn hybrid_engine_splits_work_across_substrates() {
        let tile = tile();
        let engine = engine_on(AggregationDevice::Hybrid);
        let pairs = engine.filter_pairs(&tile.first, &tile.second);
        let report = engine.compare_pairs(&pairs);
        // The GPU launch covered only the GPU share: an all-GPU run of the
        // same pairs costs strictly more cycles.
        let all_gpu = engine_on(AggregationDevice::Gpu).compare_pairs(&pairs);
        assert!(
            report.gpu_launch.unwrap().cycles < all_gpu.gpu_launch.unwrap().cycles,
            "hybrid GPU share must be a strict subset of the batch"
        );
        assert_eq!(report.pair_areas, all_gpu.pair_areas);
    }

    #[test]
    fn engine_exposes_backend_name() {
        assert_eq!(
            engine_on(AggregationDevice::Hybrid).backend().name(),
            "pixelbox-hybrid"
        );
        assert_eq!(
            engine_on(AggregationDevice::Cpu).backend().name(),
            "pixelbox-cpu"
        );
    }

    #[test]
    fn identical_inputs_have_similarity_one() {
        let tile = tile();
        let engine = CrossComparison::new(EngineConfig::default());
        let report = engine.compare_records(&tile.first, &tile.first);
        assert!((report.similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_zero_similarity() {
        let engine = CrossComparison::new(EngineConfig::default());
        let report = engine.compare_records(&[], &[]);
        assert_eq!(report.candidate_pairs, 0);
        assert_eq!(report.similarity, 0.0);
    }

    #[test]
    fn similarity_agrees_with_exact_overlay_reference() {
        // The PixelBox-based engine must reproduce exactly what the
        // GEOS-style overlay computes pair by pair.
        let tile = tile();
        let engine = CrossComparison::new(EngineConfig::default());
        let pairs = engine.filter_pairs(&tile.first, &tile.second);
        let report = engine.compare_pairs(&pairs);
        let mut acc = crate::jaccard::JaccardAccumulator::new();
        for pair in &pairs {
            acc.add_pair(sccg_clip::pair_areas(&pair.p, &pair.q));
        }
        let expected = acc.summary();
        assert_eq!(report.summary, expected);
    }
}
