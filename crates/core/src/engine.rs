//! High-level cross-comparison API.
//!
//! [`CrossComparison`] wires the substrates together for the common case of
//! comparing two in-memory segmentation results for the same tile or image:
//! build MBR lists, filter candidate pairs with the Hilbert R-tree join,
//! compute exact areas with PixelBox (on the simulated GPU or on the CPU) and
//! aggregate the `J'` similarity. The full streaming system with parsing,
//! bounded buffers and task migration lives in [`crate::pipeline`]; this type
//! is the "library entry point" a downstream user reaches for first.

use crate::jaccard::{JaccardAccumulator, JaccardSummary};
use crate::pixelbox::cpu::compute_batch_cpu;
use crate::pixelbox::gpu::GpuPixelBox;
use crate::pixelbox::{AggregationDevice, PairAreas, PixelBoxConfig, PolygonPair};
use sccg_geometry::text::PolygonRecord;
use sccg_geometry::Rect;
use sccg_gpu_sim::{Device, DeviceConfig, LaunchStats};
use sccg_rtree::mbr_join;
use std::sync::Arc;

/// Configuration of a [`CrossComparison`] engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// PixelBox parameters.
    pub pixelbox: PixelBoxConfig,
    /// Which device performs the area computations.
    pub device: AggregationDevice,
    /// Simulated GPU to use when `device` is [`AggregationDevice::Gpu`].
    pub gpu: DeviceConfig,
    /// CPU worker threads to use when `device` is [`AggregationDevice::Cpu`].
    pub cpu_workers: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            pixelbox: PixelBoxConfig::paper_default(),
            device: AggregationDevice::Gpu,
            gpu: DeviceConfig::gtx580(),
            cpu_workers: crate::parallel::default_workers(),
        }
    }
}

/// Result of cross-comparing two polygon sets.
#[derive(Debug, Clone)]
pub struct CrossComparisonReport {
    /// The `J'` similarity of the two sets (Formula 1).
    pub similarity: f64,
    /// Full aggregation summary.
    pub summary: JaccardSummary,
    /// Number of candidate pairs produced by the MBR join.
    pub candidate_pairs: usize,
    /// Per-pair areas, in candidate-pair order.
    pub pair_areas: Vec<PairAreas>,
    /// Simulated GPU launch statistics, when the GPU executed the batch.
    pub gpu_launch: Option<LaunchStats>,
    /// Simulated GPU seconds (transfers + kernel), when the GPU was used.
    pub gpu_seconds: Option<f64>,
}

/// Cross-comparison engine binding a device and a PixelBox configuration.
#[derive(Debug, Clone)]
pub struct CrossComparison {
    config: EngineConfig,
    gpu: Arc<Device>,
}

impl CrossComparison {
    /// Creates an engine; the simulated GPU device is instantiated eagerly so
    /// repeated comparisons share it (and its cumulative statistics).
    pub fn new(config: EngineConfig) -> Self {
        let gpu = Arc::new(Device::new(config.gpu.clone()));
        CrossComparison { config, gpu }
    }

    /// Creates an engine sharing an existing simulated device.
    pub fn with_device(config: EngineConfig, gpu: Arc<Device>) -> Self {
        CrossComparison { config, gpu }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The simulated GPU device used by this engine.
    pub fn device(&self) -> &Arc<Device> {
        &self.gpu
    }

    /// Filters candidate pairs of two record sets by MBR intersection,
    /// returning the pairs in join order. Exposed so callers can inspect the
    /// filter stage's output (and so benches can time it separately).
    pub fn filter_pairs(
        &self,
        first: &[PolygonRecord],
        second: &[PolygonRecord],
    ) -> Vec<PolygonPair> {
        let left: Vec<Rect> = first.iter().map(|r| r.polygon.mbr()).collect();
        let right: Vec<Rect> = second.iter().map(|r| r.polygon.mbr()).collect();
        mbr_join(&left, &right)
            .into_iter()
            .map(|(i, j)| {
                PolygonPair::new(
                    first[i as usize].polygon.clone(),
                    second[j as usize].polygon.clone(),
                )
            })
            .collect()
    }

    /// Cross-compares two polygon record sets (typically the two segmentation
    /// results of one tile) and returns the similarity report.
    pub fn compare_records(
        &self,
        first: &[PolygonRecord],
        second: &[PolygonRecord],
    ) -> CrossComparisonReport {
        let pairs = self.filter_pairs(first, second);
        self.compare_pairs(&pairs)
    }

    /// Cross-compares an already-filtered batch of polygon pairs.
    pub fn compare_pairs(&self, pairs: &[PolygonPair]) -> CrossComparisonReport {
        let (pair_areas, gpu_launch, gpu_seconds) = match self.config.device {
            AggregationDevice::Gpu => {
                let engine = GpuPixelBox::new(Arc::clone(&self.gpu));
                let result = engine.compute_batch(pairs, &self.config.pixelbox);
                let total = result.total_seconds();
                (result.areas, Some(result.launch), Some(total))
            }
            AggregationDevice::Cpu => (
                compute_batch_cpu(pairs, &self.config.pixelbox, self.config.cpu_workers),
                None,
                None,
            ),
        };

        let mut acc = JaccardAccumulator::new();
        for areas in &pair_areas {
            acc.add_pair(*areas);
        }
        let summary = acc.summary();
        CrossComparisonReport {
            similarity: summary.similarity,
            summary,
            candidate_pairs: pairs.len(),
            pair_areas,
            gpu_launch,
            gpu_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sccg_datagen::{generate_tile_pair, TileSpec};

    fn tile() -> sccg_datagen::TilePair {
        generate_tile_pair(&TileSpec {
            target_polygons: 80,
            width: 512,
            height: 512,
            seed: 21,
            ..TileSpec::default()
        })
    }

    #[test]
    fn gpu_engine_produces_plausible_similarity() {
        let tile = tile();
        let engine = CrossComparison::new(EngineConfig::default());
        let report = engine.compare_records(&tile.first, &tile.second);
        assert!(report.candidate_pairs > 0);
        assert!(report.similarity > 0.3 && report.similarity <= 1.0);
        assert!(report.gpu_launch.is_some());
        assert!(report.gpu_seconds.unwrap() > 0.0);
        assert_eq!(report.pair_areas.len(), report.candidate_pairs);
    }

    #[test]
    fn cpu_and_gpu_engines_agree_exactly() {
        let tile = tile();
        let gpu_engine = CrossComparison::new(EngineConfig::default());
        let cpu_engine = CrossComparison::new(EngineConfig {
            device: AggregationDevice::Cpu,
            ..EngineConfig::default()
        });
        let gpu_report = gpu_engine.compare_records(&tile.first, &tile.second);
        let cpu_report = cpu_engine.compare_records(&tile.first, &tile.second);
        assert_eq!(gpu_report.pair_areas, cpu_report.pair_areas);
        assert_eq!(gpu_report.similarity, cpu_report.similarity);
        assert!(cpu_report.gpu_launch.is_none());
    }

    #[test]
    fn identical_inputs_have_similarity_one() {
        let tile = tile();
        let engine = CrossComparison::new(EngineConfig::default());
        let report = engine.compare_records(&tile.first, &tile.first);
        assert!((report.similarity - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_yield_zero_similarity() {
        let engine = CrossComparison::new(EngineConfig::default());
        let report = engine.compare_records(&[], &[]);
        assert_eq!(report.candidate_pairs, 0);
        assert_eq!(report.similarity, 0.0);
    }

    #[test]
    fn similarity_agrees_with_exact_overlay_reference() {
        // The PixelBox-based engine must reproduce exactly what the
        // GEOS-style overlay computes pair by pair.
        let tile = tile();
        let engine = CrossComparison::new(EngineConfig::default());
        let pairs = engine.filter_pairs(&tile.first, &tile.second);
        let report = engine.compare_pairs(&pairs);
        let mut acc = crate::jaccard::JaccardAccumulator::new();
        for pair in &pairs {
            acc.add_pair(sccg_clip::pair_areas(&pair.p, &pair.q));
        }
        let expected = acc.summary();
        assert_eq!(report.summary, expected);
    }
}
