//! Small shared synchronization helpers.
//!
//! Every long-lived component in the workspace — the pipeline executor, the
//! serving layer's job queue and admission semaphore, the wire front-end's
//! connection state — holds locks that a panicking task may abandon. All of
//! them share the same recovery policy: a poisoned mutex is recovered, not
//! propagated, because the panic is already contained at the task/shard
//! boundary and the protected state is still structurally valid. The policy
//! lives here once instead of being re-stated per module.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the data if a previous holder panicked.
///
/// Panics inside tasks, shards and connection handlers are contained at
/// their own boundary (the executor catches poll panics, the service fails
/// only the affected query); the state a panicking holder leaves behind is
/// still consistent, so the lock is recovered rather than letting the poison
/// cascade into every later accessor.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recovers_a_poisoned_mutex() {
        let mutex = Arc::new(Mutex::new(7));
        let poisoner = Arc::clone(&mutex);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(mutex.is_poisoned());
        assert_eq!(*lock(&mutex), 7);
        *lock(&mutex) = 8;
        assert_eq!(*lock(&mutex), 8);
    }
}
