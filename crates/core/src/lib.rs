//! SCCG — Spatial Cross-Comparison on CPUs and GPUs.
//!
//! This crate is a from-scratch Rust reproduction of the system described in
//! *"Accelerating Pathology Image Data Cross-Comparison on CPU-GPU Hybrid
//! Systems"* (Wang, Huai, Lee, Wang, Zhang, Saltz — PVLDB 5(11), 2012). It
//! computes the Jaccard similarity of two sets of segmented nucleus
//! boundaries extracted from the same whole-slide pathology image, using:
//!
//! * **PixelBox** ([`pixelbox`]) — the paper's GPU algorithm for the areas of
//!   intersection and union of rectilinear polygon pairs, implemented against
//!   the SIMT device simulator of `sccg-gpu-sim`, together with its CPU port
//!   (`PixelBox-CPU`) and the degenerate variants used in the evaluation
//!   (`PixelOnly`, `PixelBox-NoSep`).
//! * **A pipelined execution framework** ([`pipeline`]) — parser → builder →
//!   filter → aggregator stages run as tasks on a hand-rolled event-driven
//!   executor ([`pipeline::exec`]) and connected by bounded async buffers,
//!   so arbitrarily long tile streams execute under O(buffer) memory
//!   ([`pipeline::Pipeline::run_streaming`]); plus the dynamic
//!   task-migration mechanism that balances work between CPUs and GPUs, and
//!   a deterministic performance model used to regenerate the paper's
//!   system-level experiments (Table 1, Figures 11 and 12).
//! * **Jaccard aggregation** ([`jaccard`]) — the `J'` similarity metric of
//!   Formula 1.
//!
//! # Quick start
//!
//! ```
//! use sccg::prelude::*;
//!
//! // Generate a small synthetic tile with two segmentation results.
//! let spec = sccg_datagen::TileSpec { target_polygons: 60, width: 512, height: 512, seed: 7, ..Default::default() };
//! let tile = sccg_datagen::generate_tile_pair(&spec);
//!
//! // Cross-compare the two results with PixelBox on the simulated GPU.
//! let engine = CrossComparison::new(EngineConfig::default());
//! let report = engine.compare_records(&tile.first, &tile.second);
//! assert!(report.similarity > 0.0 && report.similarity <= 1.0);
//! ```

// Unsafe code is denied (not forbidden) crate-wide: the single exemption is
// `parallel`, whose persistent worker pool must hand borrowed slices to
// non-scoped threads (the rayon technique) and documents its soundness
// invariant at every unsafe block. Everything else remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod collections;
pub mod engine;
pub mod error;
pub mod faults;
pub mod jaccard;
pub mod parallel;
pub mod pipeline;
pub mod pixelbox;
pub mod sync;

pub use collections::LruCache;
pub use engine::{CrossComparison, CrossComparisonReport, EngineConfig};
pub use error::SccgError;
pub use faults::{FaultInjector, FaultPlan, FaultStats};
pub use jaccard::{JaccardAccumulator, JaccardSummary};
pub use parallel::WorkerPool;

/// Convenient re-exports for application code.
pub mod prelude {
    pub use crate::engine::{CrossComparison, CrossComparisonReport, EngineConfig};
    pub use crate::error::SccgError;
    pub use crate::jaccard::{JaccardAccumulator, JaccardSummary};
    pub use crate::pipeline::model::{
        HybridPipelineReport, HybridSplitMode, PipelineModel, PlatformConfig, Scheme,
    };
    pub use crate::pipeline::{Pipeline, PipelineConfig, PipelineReport};
    pub use crate::pixelbox::{
        AggregationDevice, BackendBatch, ComputeBackend, CpuBackend, GpuBackend, HybridBackend,
        PairAreas, PixelBoxConfig, PolygonPair, SplitConfig, SplitController, SplitPolicy,
        SplitTrace, Variant,
    };
}
