//! Cross-crate integration tests: every computation path of the system must
//! agree on the same workloads — the SDBMS query, the GEOS-style overlay, the
//! PixelBox CPU port, the PixelBox GPU kernel and the full pipelined
//! framework all compute the identical Jaccard similarity.

use sccg::jaccard::JaccardAccumulator;
use sccg::pipeline::{ParseTask, Pipeline, PipelineConfig};
use sccg_datagen::{generate_dataset, generate_tile_pair, DatasetSpec, TileSpec};
use sccg_repro::prelude::*;
use sccg_sdbms::{execute_cross_comparison, execute_parallel, PolygonTable, QueryPlan};

fn test_tile() -> sccg_datagen::TilePair {
    generate_tile_pair(&TileSpec {
        target_polygons: 150,
        width: 1024,
        height: 1024,
        seed: 2024,
        ..TileSpec::default()
    })
}

#[test]
fn sdbms_engine_and_pipeline_agree_on_similarity() {
    let tile = test_tile();

    // Path 1: the mini SDBMS executing the optimized query (PostGIS path).
    let table_a = PolygonTable::new("a", tile.first.clone());
    let table_b = PolygonTable::new("b", tile.second.clone());
    let sdbms = execute_cross_comparison(&table_a, &table_b, QueryPlan::Optimized);

    // Path 2: the library engine with PixelBox on the simulated GPU.
    let engine = CrossComparison::new(EngineConfig::default());
    let gpu_report = engine.compare_records(&tile.first, &tile.second);

    // Path 3: the library engine with PixelBox-CPU.
    let cpu_engine =
        CrossComparison::new(EngineConfig::default().with_device(AggregationDevice::Cpu));
    let cpu_report = cpu_engine.compare_records(&tile.first, &tile.second);

    // Path 4: the full pipelined framework from text files.
    let pipeline = Pipeline::new(PipelineConfig::default().with_migration(true));
    let pipeline_report = pipeline.run(vec![ParseTask::from_tile_pair(&tile)]);

    assert_eq!(sdbms.candidate_pairs as usize, gpu_report.candidate_pairs);
    assert_eq!(
        sdbms.intersecting_pairs,
        gpu_report.summary.intersecting_pairs
    );
    assert!((sdbms.similarity - gpu_report.similarity).abs() < 1e-12);
    assert!((gpu_report.similarity - cpu_report.similarity).abs() < 1e-12);
    assert!((gpu_report.similarity - pipeline_report.similarity()).abs() < 1e-12);
}

#[test]
fn cpu_gpu_and_both_hybrid_modes_agree_bit_for_bit_end_to_end() {
    // Backend agreement across the whole stack: the same tile pushed through
    // every substrate — CPU, GPU, the static §5 hybrid split AND the
    // adaptive timing-feedback split — must yield bit-identical per-pair
    // areas and the identical J'.
    let tile = test_tile();
    let reports: Vec<CrossComparisonReport> = [
        (AggregationDevice::Gpu, SplitPolicy::Static),
        (AggregationDevice::Cpu, SplitPolicy::Static),
        (AggregationDevice::Hybrid, SplitPolicy::Static),
        (AggregationDevice::Hybrid, SplitPolicy::Adaptive),
    ]
    .into_iter()
    .map(|(device, split_policy)| {
        let engine = CrossComparison::new(
            EngineConfig::default()
                .with_device(device)
                .with_split_policy(split_policy),
        );
        // Several comparisons so the adaptive controller actually moves; the
        // returned report is the last one.
        engine.compare_records(&tile.first, &tile.second);
        engine.compare_records(&tile.first, &tile.second);
        engine.compare_records(&tile.first, &tile.second)
    })
    .collect();
    let [gpu, cpu, hybrid, adaptive] = <[CrossComparisonReport; 4]>::try_from(reports).unwrap();
    assert_eq!(gpu.pair_areas, cpu.pair_areas);
    assert_eq!(gpu.pair_areas, hybrid.pair_areas);
    assert_eq!(gpu.pair_areas, adaptive.pair_areas);
    assert_eq!(gpu.summary, cpu.summary);
    assert_eq!(gpu.summary, hybrid.summary);
    assert_eq!(gpu.summary, adaptive.summary);
    assert_eq!(gpu.similarity, hybrid.similarity);
    assert_eq!(gpu.similarity, adaptive.similarity);
    // And the static hybrid run demonstrably touched both substrates: its
    // GPU launch covers only part of the batch.
    assert!(hybrid.gpu_launch.is_some());
    assert!(hybrid.gpu_launch.unwrap().cycles < gpu.gpu_launch.unwrap().cycles);
}

#[test]
fn adaptive_pipeline_traces_its_splits_and_matches_static_results() {
    // The pipelined framework under AggregationDevice::Hybrid defaults to
    // the adaptive split and reports a per-batch SplitTrace; similarity is
    // identical to the static-split run on the same tiles.
    let dataset = generate_dataset(&DatasetSpec {
        name: "adaptive-e2e".into(),
        tiles: 8,
        polygons_per_tile: 50,
        tile_size: 512,
        seed: 99,
        nucleus_radius: 6,
    });
    let tasks = || -> Vec<ParseTask> {
        dataset
            .tiles
            .iter()
            .map(ParseTask::from_tile_pair)
            .collect()
    };
    let adaptive = Pipeline::new(
        PipelineConfig::default()
            .with_device(AggregationDevice::Hybrid)
            .with_aggregator_batch(2)
            .with_migration(false),
    )
    .run(tasks());
    let pinned = Pipeline::new(
        PipelineConfig::default()
            .with_device(AggregationDevice::Hybrid)
            .with_aggregator_batch(2)
            .with_migration(false)
            .with_split_policy(SplitPolicy::Static),
    )
    .run(tasks());
    assert!((adaptive.similarity() - pinned.similarity()).abs() < 1e-12);
    assert_eq!(
        adaptive.summary.candidate_pairs,
        pinned.summary.candidate_pairs
    );
    let trace = adaptive.split_trace.as_ref().expect("hybrid trace");
    assert!(!trace.is_empty());
    assert!(trace
        .samples()
        .iter()
        .all(|s| (0.0..=1.0).contains(&s.next_fraction)));
    assert!(pinned
        .split_trace
        .as_ref()
        .expect("static hybrid trace")
        .samples()
        .iter()
        .all(|s| s.next_fraction == 0.5));
}

#[test]
fn unoptimized_and_optimized_sdbms_plans_agree_with_parallel_execution() {
    let tile = test_tile();
    let a = PolygonTable::new("a", tile.first);
    let b = PolygonTable::new("b", tile.second);
    let unopt = execute_cross_comparison(&a, &b, QueryPlan::Unoptimized);
    let opt = execute_cross_comparison(&a, &b, QueryPlan::Optimized);
    let (parallel, makespan) = execute_parallel(&a, &b, QueryPlan::Optimized, 16, 8);
    assert!((unopt.similarity - opt.similarity).abs() < 1e-12);
    assert!((parallel.similarity - opt.similarity).abs() < 1e-9);
    assert!(makespan > 0.0);
}

#[test]
fn identical_segmentations_score_perfect_similarity_everywhere() {
    let tile = test_tile();
    let engine = CrossComparison::new(EngineConfig::default());
    let report = engine.compare_records(&tile.first, &tile.first);
    assert!((report.similarity - 1.0).abs() < 1e-12);

    let table = PolygonTable::new("t", tile.first.clone());
    let sdbms = execute_cross_comparison(&table, &table, QueryPlan::Optimized);
    assert!((sdbms.similarity - 1.0).abs() < 1e-12);
}

#[test]
fn pixelbox_matches_exact_overlay_per_pair_on_a_dataset() {
    // Per-pair agreement (not just aggregate) between the GPU kernel and the
    // GEOS-style overlay across a small multi-tile data set.
    let dataset = generate_dataset(&DatasetSpec {
        name: "integration".into(),
        tiles: 3,
        polygons_per_tile: 60,
        tile_size: 768,
        seed: 31,
        nucleus_radius: 7,
    });
    let engine = CrossComparison::new(EngineConfig::default());
    for tile in &dataset.tiles {
        let pairs = engine.filter_pairs(&tile.first, &tile.second);
        let report = engine.compare_pairs(&pairs);
        let mut acc = JaccardAccumulator::new();
        for (pair, areas) in pairs.iter().zip(&report.pair_areas) {
            let reference = sccg_clip::pair_areas(&pair.p, &pair.q);
            assert_eq!(*areas, reference);
            acc.add_pair(reference);
        }
        assert_eq!(report.summary, acc.summary());
    }
}

#[test]
fn serving_layer_agrees_with_engine_pipeline_and_sdbms() {
    // The fifth computation path: the persistent serving layer. A
    // whole-slide query through a mixed-device ComparisonService must
    // produce the same similarity as the one-shot engine, the pipelined
    // framework and the SDBMS on the same tiles.
    let dataset = generate_dataset(&DatasetSpec {
        name: "serving-e2e".into(),
        tiles: 5,
        polygons_per_tile: 60,
        tile_size: 512,
        seed: 321,
        nucleus_radius: 6,
    });

    // Reference: the one-shot engine, tile by tile.
    let engine = CrossComparison::new(EngineConfig::default());
    let mut acc = JaccardAccumulator::new();
    for tile in &dataset.tiles {
        let report = engine.compare_records(&tile.first, &tile.second);
        let mut tile_acc = JaccardAccumulator::new();
        for areas in &report.pair_areas {
            tile_acc.add_pair(*areas);
        }
        acc.merge(&tile_acc);
    }
    let expected = acc.summary();

    // The pipelined framework from serialized text.
    let pipeline_report = Pipeline::new(PipelineConfig::default()).run(
        dataset
            .tiles
            .iter()
            .map(ParseTask::from_tile_pair)
            .collect(),
    );
    assert!((pipeline_report.similarity() - expected.similarity).abs() < 1e-12);

    // The serving layer, registered once and queried.
    let store = SlideStore::new();
    let first = store.register_slide(
        "result-a",
        dataset.tiles.iter().map(|t| t.first.clone()).collect(),
    );
    let second = store.register_slide(
        "result-b",
        dataset.tiles.iter().map(|t| t.second.clone()).collect(),
    );
    let service = ComparisonService::new(store, ServiceConfig::default()).expect("service");
    let response = service
        .submit(QueryRequest::new(first, second))
        .expect("submit")
        .wait()
        .expect("resolve");
    // Sharded, merged in tile order: bit-identical to the reference fold.
    assert_eq!(response.summary, expected);
    assert_eq!(response.shards, dataset.tiles.len());

    // And a resubmission is answered from the cache with the same result.
    let cached = service
        .submit(QueryRequest::new(first, second))
        .expect("resubmit")
        .wait()
        .expect("cached resolve");
    assert!(cached.cache_hit);
    assert_eq!(cached.summary, expected);
}

#[test]
fn text_round_trip_preserves_similarity() {
    // Serializing to the polygon-file format and re-parsing (what the parser
    // stage does) must not change any result.
    let tile = test_tile();
    let engine = CrossComparison::new(EngineConfig::default());
    let direct = engine.compare_records(&tile.first, &tile.second);

    let first = sccg_geometry::text::parse_polygon_file(&tile.first_as_text()).unwrap();
    let second = sccg_geometry::text::parse_polygon_file(&tile.second_as_text()).unwrap();
    let reparsed = engine.compare_records(&first, &second);
    assert_eq!(direct.summary, reparsed.summary);
}
