//! Integration tests asserting the *shapes* of the paper's experiments
//! (see EXPERIMENTS.md): who wins, in which direction, and where the
//! crossovers fall — independent of absolute numbers.

use sccg::pipeline::model::{PipelineModel, PlatformConfig, Scheme, TileStats};
use sccg::pixelbox::{ComputeBackend, GpuBackend};
use sccg::pixelbox::{OptimizationFlags, PixelBoxConfig, PolygonPair, Variant};
use sccg_datagen::{generate_dataset, generate_tile_pair, DatasetSpec, TileSpec};
use sccg_gpu_sim::{Device, DeviceConfig};
use sccg_rtree::mbr_join;
use sccg_sdbms::{execute_cross_comparison, PolygonTable, QueryPlan};
use std::sync::Arc;

fn scaled_pairs(scale: i32) -> Vec<PolygonPair> {
    let tile = generate_tile_pair(&TileSpec {
        target_polygons: 120,
        width: 1536,
        height: 1536,
        seed: 77,
        ..TileSpec::default()
    });
    let left: Vec<_> = tile.first.iter().map(|r| r.polygon.mbr()).collect();
    let right: Vec<_> = tile.second.iter().map(|r| r.polygon.mbr()).collect();
    mbr_join(&left, &right)
        .into_iter()
        .map(|(i, j)| {
            PolygonPair::new(
                tile.first[i as usize].polygon.scale(scale).unwrap(),
                tile.second[j as usize].polygon.scale(scale).unwrap(),
            )
        })
        .collect()
}

fn gpu() -> GpuBackend {
    GpuBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())))
}

/// Figure 2 shape: area-of-intersection dominates the optimized query; the
/// unoptimized query additionally pays for `ST_Intersects` and area-of-union.
#[test]
fn figure2_shape_intersection_dominates_optimized_query() {
    let tile = generate_tile_pair(&TileSpec {
        target_polygons: 200,
        width: 1536,
        height: 1536,
        seed: 3,
        ..TileSpec::default()
    });
    let a = PolygonTable::new("a", tile.first);
    let b = PolygonTable::new("b", tile.second);
    let opt = execute_cross_comparison(&a, &b, QueryPlan::Optimized);
    let unopt = execute_cross_comparison(&a, &b, QueryPlan::Unoptimized);
    assert!(opt.profile.area_of_intersection > 0.5 * opt.profile.total());
    assert!(opt.profile.index_build + opt.profile.index_search < 0.3 * opt.profile.total());
    assert!(unopt.profile.total() > opt.profile.total());
    assert!(unopt.profile.area_of_union > 0.0 && unopt.profile.st_intersects > 0.0);
}

/// Figure 8 shape: at large scale factors, PixelOnly degrades sharply while
/// the sampling-box variants stay nearly flat, and the indirect-union variant
/// is at least as fast as computing the union directly.
#[test]
fn figure8_shape_sampling_boxes_flatten_scaling() {
    let engine = gpu();
    let base = PixelBoxConfig::paper_default();
    let times = |variant: Variant, scale: i32| {
        engine
            .compute_batch(&scaled_pairs(scale), &base.with_variant(variant))
            .kernel_seconds()
    };
    let pixel_only_1 = times(Variant::PixelOnly, 1);
    let pixel_only_5 = times(Variant::PixelOnly, 5);
    let full_1 = times(Variant::Full, 1);
    let full_5 = times(Variant::Full, 5);
    let nosep_5 = times(Variant::NoSep, 5);
    // PixelOnly degrades much faster than PixelBox as polygons grow 25x.
    assert!(pixel_only_5 / pixel_only_1 > 2.0 * (full_5 / full_1));
    // At SF5 the full algorithm clearly wins, and indirect union helps.
    assert!(full_5 < pixel_only_5);
    assert!(full_5 <= nosep_5);
}

/// Figure 9 shape: every optimization helps, and the fully optimized kernel
/// is fastest, without changing results.
#[test]
fn figure9_shape_optimizations_monotonically_help() {
    let engine = gpu();
    let pairs = scaled_pairs(4);
    let base = PixelBoxConfig::paper_default();
    let noopt = engine.compute_batch(&pairs, &base.with_opts(OptimizationFlags::none()));
    let all = engine.compute_batch(&pairs, &base.with_opts(OptimizationFlags::all()));
    assert_eq!(noopt.areas, all.areas);
    let (all_launch, noopt_launch) = (all.launch.unwrap(), noopt.launch.unwrap());
    assert!(all_launch.cycles < noopt_launch.cycles);
    assert!(all_launch.bank_conflicts <= noopt_launch.bank_conflicts);
}

/// Figure 10 shape: the recommended threshold region (around n²/2) is no
/// worse than both extremes, and a huge threshold (pure pixelization of large
/// pairs) is the worst choice.
#[test]
fn figure10_shape_threshold_sweet_spot() {
    let engine = gpu();
    let pairs = scaled_pairs(5);
    let time_for = |threshold: u32| {
        engine
            .compute_batch(
                &pairs,
                &PixelBoxConfig::paper_default().with_threshold(threshold),
            )
            .kernel_seconds()
    };
    let tiny = time_for(8);
    let recommended = time_for(2048);
    let huge = time_for(1 << 22);
    assert!(
        recommended <= tiny * 1.05,
        "recommended {recommended} tiny {tiny}"
    );
    assert!(recommended < huge, "recommended {recommended} huge {huge}");
}

/// Table 1 + Figure 11 + Figure 12 shapes from the performance model on a
/// real generated data set.
#[test]
fn system_experiment_shapes_hold_on_generated_datasets() {
    let dataset = generate_dataset(&DatasetSpec {
        name: "shape-check".into(),
        tiles: 16,
        polygons_per_tile: 150,
        tile_size: 1024,
        seed: 12,
        nucleus_radius: 7,
    });
    let tiles = TileStats::from_dataset(&dataset);
    let model = PipelineModel::new(PlatformConfig::config_i());

    // Table 1 ordering.
    let postgis_s = model.sdbms_single_core(&tiles);
    let nopipe_s = model.simulate(Scheme::NoPipeS, &tiles, false);
    let nopipe_m = model.simulate(Scheme::NoPipeM { streams: 4 }, &tiles, false);
    let pipelined = model.simulate(Scheme::Pipelined, &tiles, false);
    assert!(postgis_s > nopipe_s && nopipe_s > nopipe_m && nopipe_m > pipelined);

    // Figure 11: migration helps on every platform, least on Config-III.
    let gain = |platform: PlatformConfig| {
        let m = PipelineModel::new(platform);
        m.simulate(Scheme::Pipelined, &tiles, false) / m.simulate(Scheme::Pipelined, &tiles, true)
    };
    let g1 = gain(PlatformConfig::config_i());
    let g2 = gain(PlatformConfig::config_ii());
    let g3 = gain(PlatformConfig::config_iii());
    assert!(g1 >= 1.0 && g2 >= 1.0 && g3 >= 1.0);
    assert!(g3 <= g1 && g3 <= g2);

    // Figure 12: SCCG beats the parallelized SDBMS by a large factor.
    let postgis_m = PipelineModel::new(PlatformConfig::postgis_m_platform());
    // On this deliberately small 16-tile data set the fixed per-tile
    // overheads weigh more than in the full-size study, so the bar here is
    // "several times faster"; the full 18-data-set comparison is produced by
    // `reproduce -- fig12`.
    let speedup =
        postgis_m.sdbms_parallel(&tiles) / model.simulate(Scheme::Pipelined, &tiles, true);
    assert!(speedup > 3.0, "speedup {speedup}");
}
