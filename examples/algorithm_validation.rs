//! Whole-slide algorithm validation — the workload that motivates the paper.
//!
//! A study compares the output of a new segmentation algorithm against a
//! reference segmentation over every tile of a whole-slide image. This
//! example runs the full pipelined framework (parser → builder → filter →
//! aggregator with dynamic task migration) over a synthetic slide and prints
//! the per-stage statistics and the final similarity verdict.
//!
//! ```text
//! cargo run --release --example algorithm_validation
//! ```

use sccg::pipeline::{ParseTask, Pipeline, PipelineConfig};
use sccg_datagen::{generate_dataset, DatasetSpec};

fn main() {
    let dataset = generate_dataset(&DatasetSpec {
        name: "validation_slide".into(),
        tiles: 16,
        polygons_per_tile: 200,
        tile_size: 1024,
        seed: 7,
        nucleus_radius: 7,
    });
    println!(
        "slide '{}': {} tiles, {} + {} polygons, {:.1} KiB of polygon text",
        dataset.spec.name,
        dataset.tiles.len(),
        dataset.first_polygon_count(),
        dataset.second_polygon_count(),
        dataset.text_size_bytes() as f64 / 1024.0
    );

    // The parser stage consumes the text files a segmentation pipeline would
    // have written to disk.
    let tasks: Vec<ParseTask> = dataset
        .tiles
        .iter()
        .map(ParseTask::from_tile_pair)
        .collect();

    let pipeline = Pipeline::new(
        PipelineConfig::default()
            .with_parser_workers(2)
            .with_buffer_capacity(4)
            .with_migration(true),
    );
    let report = pipeline.run(tasks);

    println!("tiles processed:          {}", report.tiles);
    println!("candidate pairs:          {}", report.candidate_pairs);
    println!(
        "intersecting pairs:       {}",
        report.summary.intersecting_pairs
    );
    println!("Jaccard similarity J':    {:.4}", report.similarity());
    println!(
        "stage busy times: parse {:.3}s, build {:.3}s, filter {:.3}s, aggregate(host) {:.3}s",
        report.stage_seconds.parse,
        report.stage_seconds.build,
        report.stage_seconds.filter,
        report.stage_seconds.aggregate_host
    );
    println!(
        "simulated GPU busy time:  {:.4}s",
        report.stage_seconds.aggregate_gpu_simulated
    );
    println!(
        "task migration: {} aggregation tasks ran on the CPU, {} parse tasks ran on the GPU",
        report.migrated_to_cpu, report.migrated_to_gpu
    );

    if report.similarity() > 0.7 {
        println!("verdict: the two algorithms agree closely (J' > 0.7)");
    } else {
        println!("verdict: substantial disagreement — inspect parameters");
    }
}
