//! The serving API: register slides once, serve concurrent queries.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! Demonstrates the persistent query layer: a `SlideStore` holding two
//! registered segmentation results, and a `ComparisonService` sharding
//! whole-slide comparison queries across a mixed CPU/GPU/hybrid engine
//! pool, answering repeats from its response cache, and bounding
//! concurrency with admission control.

use sccg_datagen::{generate_dataset, DatasetSpec};
use sccg_repro::prelude::*;

fn main() {
    // 1. Register the two segmentation results of one synthetic slide once.
    let dataset = generate_dataset(&DatasetSpec {
        name: "serving-demo".into(),
        tiles: 10,
        polygons_per_tile: 80,
        tile_size: 512,
        seed: 7,
        nucleus_radius: 6,
    });
    let store = SlideStore::new();
    let first = store.register_slide(
        "oligoastroiii-algo-a",
        dataset.tiles.iter().map(|t| t.first.clone()).collect(),
    );
    let second = store.register_slide(
        "oligoastroiii-algo-b",
        dataset.tiles.iter().map(|t| t.second.clone()).collect(),
    );
    for id in [first, second] {
        let info = store.slide(id).expect("registered slide");
        println!(
            "registered slide {}: {:<22} {} tiles, {} polygons",
            id.value(),
            info.name,
            info.tiles,
            info.polygons
        );
    }

    // 2. Start a service: a mixed engine pool (GPU, CPU, 2x hybrid sharing
    //    one pooled split controller), at most 2 queries in flight.
    let service = ComparisonService::new(store, ServiceConfig::default().with_max_in_flight(2))
        .expect("service starts");
    println!("engine pool: {:?}\n", service.engine_devices());

    // 3. Serve concurrent queries: a whole-slide comparison on any engine, a
    //    CPU-pinned repeat, and a high-priority subset query.
    let responses: Vec<QueryResponse> = std::thread::scope(|scope| {
        let requests = vec![
            QueryRequest::new(first, second),
            QueryRequest::new(first, second).on_device(AggregationDevice::Cpu),
            QueryRequest::new(first, second)
                .tiles(vec![0, 1, 2])
                .priority(QueryPriority::High),
        ];
        let handles: Vec<_> = requests
            .into_iter()
            .map(|request| {
                let service = &service;
                scope.spawn(move || service.submit(request).unwrap().wait().unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for response in &responses {
        println!(
            "query over {:>2} tiles: J' = {:.6}  ({} shards, backends {:?})",
            response.tiles.len(),
            response.similarity(),
            response.shards,
            response.backends_used(),
        );
    }
    // Sharding never changes the answer: every whole-slide response is
    // bit-identical regardless of device preference.
    assert_eq!(responses[0].summary, responses[1].summary);

    // 4. A repeated query is a cache hit — no backend touched.
    let before = service.stats().backend_batches;
    let repeat = service
        .submit(QueryRequest::new(first, second))
        .unwrap()
        .wait()
        .unwrap();
    assert!(repeat.cache_hit);
    assert_eq!(service.stats().backend_batches, before);
    println!("\nrepeat query: cache hit, backend batches still {before}");

    // 5. Telemetry: service counters and the pooled hybrid split trace,
    //    exported as JSON.
    println!("\nservice stats: {}", service.stats().to_json());
    if let Some(trace) = service.split_trace() {
        println!(
            "pooled split controller: {} batches recorded, last fraction {:?}",
            trace.len(),
            trace.last_fraction()
        );
    }
}
