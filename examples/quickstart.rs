//! Quickstart: cross-compare two segmentation results for one image tile.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sccg::prelude::*;
use sccg_datagen::{generate_tile_pair, TileSpec};

fn main() {
    // 1. Obtain two segmentation results for the same tile. Real deployments
    //    parse polygon text files; here we synthesize a tile whose second
    //    result is a realistic re-segmentation of the first.
    let tile = generate_tile_pair(&TileSpec {
        target_polygons: 300,
        width: 2048,
        height: 2048,
        seed: 42,
        ..TileSpec::default()
    });
    println!(
        "tile {}: {} polygons in result A, {} polygons in result B",
        tile.tile_id,
        tile.first.len(),
        tile.second.len()
    );

    // 2. Cross-compare them: MBR-filter candidate pairs with the Hilbert
    //    R-tree, compute exact areas with PixelBox on the simulated GPU, and
    //    average the Jaccard ratios.
    let engine = CrossComparison::new(EngineConfig::default());
    let report = engine.compare_records(&tile.first, &tile.second);

    println!(
        "candidate pairs (MBR overlap):   {}",
        report.candidate_pairs
    );
    println!(
        "actually intersecting pairs:     {}",
        report.summary.intersecting_pairs
    );
    println!("Jaccard similarity J':           {:.4}", report.similarity);
    println!(
        "aggregate Jaccard (sum ratio):   {:.4}",
        report.summary.aggregate_jaccard()
    );
    if let (Some(launch), Some(seconds)) = (report.gpu_launch, report.gpu_seconds) {
        println!(
            "simulated GPU: {} blocks, {:.1}% occupancy, {} cycles, {:.3} ms",
            launch.blocks_launched,
            launch.occupancy * 100.0,
            launch.cycles,
            seconds * 1e3
        );
    }
}
