//! Parameter-sensitivity study.
//!
//! Two common sensitivity questions, on one synthetic tile:
//!
//! 1. *Segmentation* sensitivity (the paper's application, §2.1): how does the
//!    Jaccard similarity degrade as the second segmentation drifts from the
//!    first (larger centre shifts and dropout)?
//! 2. *Algorithm* sensitivity (§3.4, §5.4): how does the PixelBox pixelization
//!    threshold T affect the simulated kernel time at different polygon scale
//!    factors?
//!
//! ```text
//! cargo run --release --example parameter_sensitivity
//! ```

use sccg::pixelbox::{PixelBoxConfig, PolygonPair};
use sccg::prelude::*;
use sccg_datagen::{generate_tile_pair, TileSpec};
use sccg_gpu_sim::{Device, DeviceConfig};
use std::sync::Arc;

fn main() {
    // --- 1. Segmentation drift vs similarity -------------------------------
    println!("segmentation drift vs Jaccard similarity");
    println!("  max_shift  dropout   J'");
    let engine = CrossComparison::new(EngineConfig::default());
    for (shift, dropout) in [(0u32, 0.0), (1, 0.02), (2, 0.05), (4, 0.10), (6, 0.20)] {
        let tile = generate_tile_pair(&TileSpec {
            target_polygons: 250,
            width: 1536,
            height: 1536,
            max_shift: shift,
            dropout,
            seed: 99,
            ..TileSpec::default()
        });
        let report = engine.compare_records(&tile.first, &tile.second);
        println!("  {shift:>9}  {dropout:>7.2}   {:.4}", report.similarity);
    }

    // --- 2. Pixelization threshold sweep ------------------------------------
    println!("\nPixelBox threshold T vs simulated kernel time (block size 64)");
    let gpu = GpuBackend::new(Arc::new(Device::new(DeviceConfig::gtx580())));
    let tile = generate_tile_pair(&TileSpec {
        target_polygons: 150,
        width: 1536,
        height: 1536,
        seed: 5,
        ..TileSpec::default()
    });
    let base_engine = CrossComparison::new(EngineConfig::default());
    let pairs: Vec<PolygonPair> = base_engine.filter_pairs(&tile.first, &tile.second);
    print!("  scale factor:");
    let thresholds = [64u32, 256, 1024, 2048, 4096, 16384];
    for t in thresholds {
        print!("  T={t:>6}");
    }
    println!();
    for scale in [1, 3, 5] {
        let scaled: Vec<PolygonPair> = pairs
            .iter()
            .map(|p| PolygonPair::new(p.p.scale(scale).unwrap(), p.q.scale(scale).unwrap()))
            .collect();
        print!("  SF{scale}          ");
        for t in thresholds {
            let config = PixelBoxConfig::paper_default().with_threshold(t);
            let result = gpu.compute_batch(&scaled, &config);
            print!("  {:>7.4}s", result.kernel_seconds());
        }
        println!();
    }
    println!(
        "\nGuidance from the paper (§3.4): choose T around n^2/2 = 2048 for 64-thread blocks."
    );
}
