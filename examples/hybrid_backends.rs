//! Backend dispatch demo: the same tile cross-compared on every substrate —
//! GPU, CPU, the §5 hybrid split pinned at a static fraction, and the
//! adaptive timing-feedback split (the `AggregationDevice::Hybrid` default)
//! — through the `ComputeBackend` seam.
//!
//! ```text
//! cargo run --release --example hybrid_backends
//! ```

use sccg::prelude::*;
use sccg_datagen::{generate_tile_pair, TileSpec};

fn main() {
    let tile = generate_tile_pair(&TileSpec {
        target_polygons: 250,
        width: 1536,
        height: 1536,
        seed: 11,
        ..TileSpec::default()
    });

    println!("device            backend          J'        pairs   sim GPU seconds");
    let mut reports = Vec::new();
    for (label, device, split_policy) in [
        ("Gpu", AggregationDevice::Gpu, SplitPolicy::Static),
        ("Cpu", AggregationDevice::Cpu, SplitPolicy::Static),
        (
            "Hybrid/static",
            AggregationDevice::Hybrid,
            SplitPolicy::Static,
        ),
        (
            "Hybrid/adaptive",
            AggregationDevice::Hybrid,
            SplitPolicy::Adaptive,
        ),
    ] {
        let engine = CrossComparison::new(
            EngineConfig::default()
                .with_device(device)
                .with_hybrid_gpu_fraction(0.5)
                .with_split_policy(split_policy),
        );
        let report = engine.compare_records(&tile.first, &tile.second);
        println!(
            "{:<17} {:<16} {:.6}  {:>5}   {}",
            label,
            engine.backend().name(),
            report.similarity,
            report.candidate_pairs,
            report
                .gpu_seconds
                .map_or("-".to_string(), |s| format!("{s:.6}")),
        );
        reports.push(report);
    }

    // Every substrate agrees bit-for-bit; the hybrids' GPU share is smaller.
    assert!(reports
        .windows(2)
        .all(|w| w[0].pair_areas == w[1].pair_areas));
    let gpu_cycles = reports[0].gpu_launch.unwrap().cycles;
    let hybrid_cycles = reports[2].gpu_launch.unwrap().cycles;
    println!(
        "\nstatic hybrid GPU launch covered {hybrid_cycles} cycles vs {gpu_cycles} all-GPU \
         ({}% of the batch on the GPU)",
        (100.0 * hybrid_cycles as f64 / gpu_cycles as f64).round()
    );

    // The adaptive controller at work: repeated batches through one engine,
    // each steering the next batch's GPU fraction toward the split where
    // both substrates finish simultaneously.
    let engine =
        CrossComparison::new(EngineConfig::default().with_device(AggregationDevice::Hybrid));
    let reference = engine.compare_records(&tile.first, &tile.second);
    for _ in 0..7 {
        let report = engine.compare_records(&tile.first, &tile.second);
        assert_eq!(report.pair_areas, reference.pair_areas);
    }
    let controller = engine.split_controller().expect("hybrid engine");
    println!("\nadaptive split trace (batch: fraction used -> fraction chosen):");
    for sample in controller.trace().samples() {
        println!(
            "  batch {:>2}: {:.3} -> {:.3}   gpu {:>4} pairs / {:>8.6} s   cpu {:>4} pairs / {:>8.6} s",
            sample.batch,
            sample.fraction,
            sample.next_fraction,
            sample.gpu_pairs,
            sample.gpu_seconds,
            sample.cpu_pairs,
            sample.cpu_seconds,
        );
    }
    println!(
        "observed rates: gpu {:.0} pairs/s, cpu {:.0} pairs/s per worker",
        controller.observed_gpu_rate().unwrap_or(0.0),
        controller.observed_cpu_rate_per_worker().unwrap_or(0.0),
    );
}
