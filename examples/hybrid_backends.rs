//! Backend dispatch demo: the same tile cross-compared on every substrate —
//! GPU, CPU and the §5 hybrid split — through the `ComputeBackend` seam.
//!
//! ```text
//! cargo run --release --example hybrid_backends
//! ```

use sccg::prelude::*;
use sccg_datagen::{generate_tile_pair, TileSpec};

fn main() {
    let tile = generate_tile_pair(&TileSpec {
        target_polygons: 250,
        width: 1536,
        height: 1536,
        seed: 11,
        ..TileSpec::default()
    });

    println!("device      backend          J'        pairs   sim GPU seconds");
    let mut reports = Vec::new();
    for device in [
        AggregationDevice::Gpu,
        AggregationDevice::Cpu,
        AggregationDevice::Hybrid,
    ] {
        let engine = CrossComparison::new(EngineConfig {
            device,
            hybrid_gpu_fraction: 0.5,
            ..EngineConfig::default()
        });
        let report = engine.compare_records(&tile.first, &tile.second);
        println!(
            "{:<11} {:<16} {:.6}  {:>5}   {}",
            format!("{device:?}"),
            engine.backend().name(),
            report.similarity,
            report.candidate_pairs,
            report
                .gpu_seconds
                .map_or("-".to_string(), |s| format!("{s:.6}")),
        );
        reports.push(report);
    }

    // Every substrate agrees bit-for-bit; the hybrid's GPU share is smaller.
    assert!(reports
        .windows(2)
        .all(|w| w[0].pair_areas == w[1].pair_areas));
    let gpu_cycles = reports[0].gpu_launch.unwrap().cycles;
    let hybrid_cycles = reports[2].gpu_launch.unwrap().cycles;
    println!(
        "\nhybrid GPU launch covered {hybrid_cycles} cycles vs {gpu_cycles} all-GPU \
         ({}% of the batch on the GPU)",
        (100.0 * hybrid_cycles as f64 / gpu_cycles as f64).round()
    );
}
