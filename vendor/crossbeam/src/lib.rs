//! Offline shim for `crossbeam`, implementing the subset of the API used by
//! this workspace over [`std::sync`] primitives:
//!
//! * [`channel`] — multi-producer multi-consumer bounded/unbounded channels
//!   with crossbeam's disconnection semantics (`recv` fails once every sender
//!   is gone and the buffer is drained; `send` fails once every receiver is
//!   gone).
//! * [`queue`] — [`queue::SegQueue`], an unbounded concurrent FIFO.
//!
//! The real crate is lock-free; this shim uses a mutex + condvars, which
//! preserves ordering and blocking behaviour (what the pipeline relies on) at
//! some throughput cost.

pub mod channel {
    //! MPMC channels mirroring `crossbeam::channel`.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    /// Error returned by [`Receiver::recv`] when the channel is empty and all
    /// senders have disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain connected.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when all receivers have
    /// disconnected; gives the unsent message back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// The sending half of a channel. Clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a bounded channel: `send` blocks while `capacity` messages are
    /// buffered.
    ///
    /// # Panics
    ///
    /// Unlike real crossbeam, this shim does not implement zero-capacity
    /// rendezvous channels; `bounded(0)` panics instead of silently behaving
    /// like `bounded(1)` (which would deadlock-differently once the shim is
    /// swapped for the real crate).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(
            capacity > 0,
            "crossbeam shim: zero-capacity rendezvous channels are not implemented"
        );
        with_capacity(Some(capacity))
    }

    fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking while a bounded channel is full. Fails only
        /// when every receiver has disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .shared
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.senders -= 1;
            if state.senders == 0 {
                // Wake receivers blocked in recv so they observe disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one is available. Fails only
        /// when the channel is empty and every sender has disconnected.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.lock();
            if let Some(value) = state.queue.pop_front() {
                self.shared.not_full.notify_one();
                Ok(value)
            } else if state.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the buffer is currently empty.
        pub fn is_empty(&self) -> bool {
            self.shared.lock().queue.is_empty()
        }

        /// A blocking iterator that yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.lock();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake senders blocked on a full buffer so they observe it.
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Iterator over received messages; ends on disconnection.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

pub mod queue {
    //! Concurrent queues mirroring `crossbeam::queue`.

    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// An unbounded concurrent FIFO queue (mutex-backed in this shim).
    #[derive(Debug, Default)]
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        /// Creates an empty queue.
        pub const fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        /// Pushes `value` to the back of the queue.
        pub fn push(&self, value: T) {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        /// Pops from the front of the queue, if non-empty.
        pub fn pop(&self) -> Option<T> {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }

        /// Number of queued values.
        pub fn len(&self) -> usize {
            self.inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, TryRecvError};
    use super::queue::SegQueue;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_distinguishes_empty_and_disconnected() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        handle.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "rendezvous")]
    fn bounded_zero_is_rejected() {
        let _ = bounded::<u8>(0);
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn iter_drains_until_disconnect() {
        let (tx, rx) = unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn multi_consumer_receives_every_message_once() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = std::thread::spawn(move || rx2.iter().count());
        let a = rx.iter().count();
        let b = h.join().unwrap();
        assert_eq!(a + b, 100);
    }

    #[test]
    fn seg_queue_fifo() {
        let q = SegQueue::new();
        assert!(q.is_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }
}
