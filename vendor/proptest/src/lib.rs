//! Offline shim for `proptest`, implementing the API subset used by this
//! workspace's property tests:
//!
//! * integer-range, tuple and `prop::collection::vec` strategies,
//! * [`strategy::Strategy::prop_map`] and
//!   [`strategy::Strategy::prop_flat_map`],
//! * the [`proptest!`] test macro with `#![proptest_config(...)]`,
//! * [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assert_ne!`].
//!
//! Semantics: each test runs `Config::cases` random cases from a
//! deterministic per-test seed. Unlike the real proptest there is **no input
//! shrinking** — a failing case reports the case number; rerunning is
//! deterministic, so the failure reproduces.

use std::fmt;

pub mod test_runner {
    //! Test-runner configuration, mirroring `proptest::test_runner`.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Error carried by `prop_assert*` failures inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Deterministic per-test seed derived from the test's name.
    pub fn for_test_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(hash)
    }

    /// Next uniform 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one random value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `map`.
        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }

        /// Generates a value, then generates from the strategy it selects.
        fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap {
                source: self,
                flat_map,
            }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        source: S,
        flat_map: F,
    }

    impl<S, F, T> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.flat_map)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128 + 1) as u64;
                    (start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+)
;
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies, mirroring `proptest::collection`.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Size specification for [`vec()`]: a fixed length or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec` works as in real proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` case, failing the case (not the
/// whole process) so the harness can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular test running `Config::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(#[test] fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng = $crate::TestRng::for_test_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                    let result = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(error) = result {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, error);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -10i32..10, y in 1u32..=5) {
            prop_assert!((-10..10).contains(&x));
            prop_assert!((1..=5).contains(&y));
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..4).prop_flat_map(|n| prop::collection::vec(0i32..100, n))) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
        }

        #[test]
        fn tuples_and_just(pair in (0i32..5, Just(7u8)), z in (0i32..3).prop_map(|v| v * 2)) {
            prop_assert_eq!(pair.1, 7u8);
            prop_assert!(z % 2 == 0);
            prop_assert_ne!(z, 5);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        use crate::strategy::Strategy;
        let strategy = crate::collection::vec(0i32..1000, 0usize..50);
        let mut a = crate::TestRng::from_seed(11);
        let mut b = crate::TestRng::from_seed(11);
        for _ in 0..20 {
            assert_eq!(strategy.generate(&mut a), strategy.generate(&mut b));
        }
    }
}
