//! Offline shim for `parking_lot`, implementing the subset of the API used by
//! this workspace (`Mutex` with non-poisoning `lock`) over [`std::sync`].
//!
//! The real crate provides faster, smaller locks; the semantics relied upon
//! here — mutual exclusion and no lock poisoning — are preserved.

use std::sync::PoisonError;

/// A mutual-exclusion primitive. Unlike [`std::sync::Mutex`], `lock` never
/// returns a poison error: a panic while holding the lock leaves the data
/// accessible to later lockers (parking_lot semantics).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed;
    /// the exclusive borrow guarantees exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let guard = m.lock();
        assert!(m.try_lock().is_none());
        drop(guard);
        assert!(m.try_lock().is_some());
    }
}
