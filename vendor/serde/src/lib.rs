//! Offline shim for `serde`: no-op `Serialize` / `Deserialize` derives.
//!
//! The workspace annotates a handful of spec types with
//! `#[derive(Serialize, Deserialize)]` for downstream users, but never calls
//! serialization itself. These derives accept the annotation and emit no
//! code, so the types compile without the real serde. Swap this shim for the
//! real crate (same package name) when registry access is available.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`'s derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`'s derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
