//! Offline shim for `rand` 0.8, implementing the API subset used by this
//! workspace: the [`Rng`] extension trait with `gen_range`/`gen_bool`,
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! The generator is SplitMix64 — deterministic, fast and statistically sound
//! for the synthetic-workload generation and Monte-Carlo estimation done
//! here. It does *not* match the real `StdRng` stream (ChaCha12), so seeds
//! produce different (but still reproducible) workloads.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits, as the real implementation does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from range types, mirroring `rand::distributions`.
pub trait SampleRange<T> {
    /// Samples one uniform value from the range. Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: SplitMix64. Deterministic per seed;
    /// the stream differs from the real `StdRng` (ChaCha12).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One scramble round so nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed };
            rng.next_u64();
            rng
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn single_value_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(4i32..=4), 4);
    }
}
