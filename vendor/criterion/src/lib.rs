//! Offline shim for `criterion`, implementing the API subset used by the
//! benches in `crates/bench`: benchmark groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId` and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery, each benchmark runs one
//! warm-up iteration followed by `sample_size` timed iterations and prints
//! the mean wall-clock time per iteration.

use std::fmt::Display;
pub use std::hint::black_box;
use std::time::Instant;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, 10, f);
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, |bencher| f(bencher, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name qualified by a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iterations: u64,
}

impl Bencher {
    /// Times `sample_size` executions of `routine` after one warm-up run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let started = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.total_nanos += started.elapsed().as_nanos();
        self.iterations += self.samples as u64;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples,
        total_nanos: 0,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations > 0 {
        let mean = bencher.total_nanos as f64 / bencher.iterations as f64;
        println!(
            "  {label}: {:.3} ms/iter ({} iters)",
            mean / 1e6,
            bencher.iterations
        );
    } else {
        println!("  {label}: no iterations recorded");
    }
}

/// Declares a group-runner function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs every group, mirroring criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_expected_number_of_times() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counter", |bencher| {
            bencher.iter(|| runs += 1);
        });
        group.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter(64).label, "64");
    }
}
