//! Umbrella crate for the SCCG reproduction workspace.
//!
//! This crate exists so the repository-level `examples/` and `tests/`
//! directories build against every member crate at once. Library users should
//! depend on the individual crates instead:
//!
//! * [`sccg`] — PixelBox, the pipelined framework, task migration and the
//!   high-level [`sccg::CrossComparison`] API (the paper's contribution).
//! * [`sccg_store`] — out-of-core slide storage: the on-disk columnar tile
//!   format ([`sccg_store::SlideFile`]) and its demand pager
//!   ([`sccg_store::TileStorage`]).
//! * [`sccg_serve`] — the slide-serving query API: [`sccg_serve::SlideStore`]
//!   and [`sccg_serve::ComparisonService`] over a pooled engine fleet.
//! * [`sccg_net`] — the framed TCP wire front-end: [`sccg_net::WireServer`],
//!   [`sccg_net::WireClient`] and the loopback load generator.
//! * [`sccg_geometry`] — rectilinear polygon geometry.
//! * [`sccg_rtree`] — Hilbert R-tree index and MBR join.
//! * [`sccg_clip`] — exact overlay (the GEOS stand-in) and Monte-Carlo baseline.
//! * [`sccg_gpu_sim`] — the simulated SIMT GPU device.
//! * [`sccg_datagen`] — synthetic pathology workloads.
//! * [`sccg_sdbms`] — the miniature spatial DBMS (PostGIS stand-in).

#![forbid(unsafe_code)]

pub use sccg;
pub use sccg_clip;
pub use sccg_datagen;
pub use sccg_geometry;
pub use sccg_gpu_sim;
pub use sccg_net;
pub use sccg_rtree;
pub use sccg_sdbms;
pub use sccg_serve;
pub use sccg_store;

/// One-stop prelude over the whole stack: the core engine/pipeline API
/// (`sccg::prelude`) plus the serving layer (`sccg_serve::prelude`).
///
/// The serving crate sits *on top of* the core crate, so it cannot be
/// re-exported from `sccg::prelude` itself without a dependency cycle; the
/// umbrella crate is where the two meet.
pub mod prelude {
    pub use sccg::prelude::*;
    pub use sccg_serve::prelude::*;
}
